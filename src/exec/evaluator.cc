#include "exec/evaluator.h"

#include <cmath>

#include "common/strings.h"
#include "sql/ast.h"

namespace hana::exec {

namespace {

using plan::BoundExpr;
using plan::BoundKind;
using sql::BinaryOp;
using sql::UnaryOp;

/// Column accessor abstraction so chunk-based and row-based evaluation
/// share one implementation.
struct RowView {
  const storage::Chunk* chunk = nullptr;
  size_t row = 0;
  const std::vector<Value>* boxed = nullptr;

  Value Get(size_t index) const {
    if (boxed != nullptr) return (*boxed)[index];
    return chunk->columns[index]->GetValue(row);
  }
};

Result<Value> Eval(const BoundExpr& expr, const RowView& view);

Result<Value> EvalBinary(const BoundExpr& expr, const RowView& view) {
  BinaryOp op = static_cast<BinaryOp>(expr.binary_op);

  // AND/OR need Kleene short-circuit semantics.
  if (op == BinaryOp::kAnd || op == BinaryOp::kOr) {
    HANA_ASSIGN_OR_RETURN(Value lhs, Eval(*expr.child0, view));
    if (op == BinaryOp::kAnd && !lhs.is_null() && !IsTruthy(lhs)) {
      return Value::Bool(false);
    }
    if (op == BinaryOp::kOr && !lhs.is_null() && IsTruthy(lhs)) {
      return Value::Bool(true);
    }
    HANA_ASSIGN_OR_RETURN(Value rhs, Eval(*expr.child1, view));
    if (op == BinaryOp::kAnd) {
      if (!rhs.is_null() && !IsTruthy(rhs)) return Value::Bool(false);
      if (lhs.is_null() || rhs.is_null()) return Value::Null();
      return Value::Bool(true);
    }
    if (!rhs.is_null() && IsTruthy(rhs)) return Value::Bool(true);
    if (lhs.is_null() || rhs.is_null()) return Value::Null();
    return Value::Bool(false);
  }

  HANA_ASSIGN_OR_RETURN(Value lhs, Eval(*expr.child0, view));
  HANA_ASSIGN_OR_RETURN(Value rhs, Eval(*expr.child1, view));
  if (lhs.is_null() || rhs.is_null()) return Value::Null();

  switch (op) {
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul: {
      if (expr.type == DataType::kDate) {
        int64_t days = lhs.type() == DataType::kDate ? lhs.int_value()
                                                     : rhs.int_value();
        int64_t delta = lhs.type() == DataType::kDate ? rhs.AsInt()
                                                      : lhs.AsInt();
        return Value::Date(op == BinaryOp::kSub ? days - delta
                                                : days + delta);
      }
      if (expr.type == DataType::kInt64 &&
          lhs.type() != DataType::kDouble && rhs.type() != DataType::kDouble) {
        int64_t a = lhs.AsInt(), b = rhs.AsInt();
        switch (op) {
          case BinaryOp::kAdd:
            return Value::Int(a + b);
          case BinaryOp::kSub:
            return Value::Int(a - b);
          default:
            return Value::Int(a * b);
        }
      }
      double a = lhs.AsDouble(), b = rhs.AsDouble();
      switch (op) {
        case BinaryOp::kAdd:
          return Value::Double(a + b);
        case BinaryOp::kSub:
          return Value::Double(a - b);
        default:
          return Value::Double(a * b);
      }
    }
    case BinaryOp::kDiv: {
      double b = rhs.AsDouble();
      if (b == 0.0) return Value::Null();
      return Value::Double(lhs.AsDouble() / b);
    }
    case BinaryOp::kMod: {
      int64_t b = rhs.AsInt();
      if (b == 0) return Value::Null();
      return Value::Int(lhs.AsInt() % b);
    }
    case BinaryOp::kEq:
      return Value::Bool(lhs.Compare(rhs) == 0);
    case BinaryOp::kNe:
      return Value::Bool(lhs.Compare(rhs) != 0);
    case BinaryOp::kLt:
      return Value::Bool(lhs.Compare(rhs) < 0);
    case BinaryOp::kLe:
      return Value::Bool(lhs.Compare(rhs) <= 0);
    case BinaryOp::kGt:
      return Value::Bool(lhs.Compare(rhs) > 0);
    case BinaryOp::kGe:
      return Value::Bool(lhs.Compare(rhs) >= 0);
    case BinaryOp::kLike:
      return Value::Bool(LikeMatch(lhs.ToString(), rhs.ToString()));
    case BinaryOp::kConcat:
      return Value::String(lhs.ToString() + rhs.ToString());
    default:
      return Status::Internal("unexpected binary op");
  }
}

Result<Value> EvalFunction(const BoundExpr& expr, const RowView& view) {
  std::vector<Value> args;
  args.reserve(expr.args.size());
  const std::string& name = expr.function_name;
  // COALESCE evaluates lazily.
  if (name == "COALESCE" || name == "IFNULL") {
    for (const auto& a : expr.args) {
      HANA_ASSIGN_OR_RETURN(Value v, Eval(*a, view));
      if (!v.is_null()) return v;
    }
    return Value::Null();
  }
  for (const auto& a : expr.args) {
    HANA_ASSIGN_OR_RETURN(Value v, Eval(*a, view));
    args.push_back(std::move(v));
  }
  for (const Value& v : args) {
    if (v.is_null()) return Value::Null();
  }
  if (name == "UPPER") return Value::String(ToUpper(args[0].ToString()));
  if (name == "LOWER") return Value::String(ToLower(args[0].ToString()));
  if (name == "TRIM") return Value::String(Trim(args[0].ToString()));
  if (name == "LENGTH") {
    return Value::Int(static_cast<int64_t>(args[0].ToString().size()));
  }
  if (name == "SUBSTR" || name == "SUBSTRING") {
    std::string s = args[0].ToString();
    int64_t start = args[1].AsInt();
    if (start < 1) start = 1;
    size_t begin = static_cast<size_t>(start - 1);
    if (begin >= s.size()) return Value::String("");
    size_t len = args.size() > 2
                     ? static_cast<size_t>(std::max<int64_t>(0, args[2].AsInt()))
                     : std::string::npos;
    return Value::String(s.substr(begin, len));
  }
  if (name == "CONCAT") {
    return Value::String(args[0].ToString() + args[1].ToString());
  }
  if (name == "ABS") {
    return args[0].type() == DataType::kDouble
               ? Value::Double(std::fabs(args[0].double_value()))
               : Value::Int(std::llabs(args[0].AsInt()));
  }
  if (name == "ROUND") {
    double scale = args.size() > 1 ? std::pow(10.0, args[1].AsDouble()) : 1.0;
    return Value::Double(std::round(args[0].AsDouble() * scale) / scale);
  }
  if (name == "FLOOR") {
    return Value::Int(static_cast<int64_t>(std::floor(args[0].AsDouble())));
  }
  if (name == "CEIL" || name == "CEILING") {
    return Value::Int(static_cast<int64_t>(std::ceil(args[0].AsDouble())));
  }
  if (name == "MOD") {
    int64_t b = args[1].AsInt();
    if (b == 0) return Value::Null();
    return Value::Int(args[0].AsInt() % b);
  }
  if (name == "YEAR" || name == "MONTH" || name == "DAYOFMONTH") {
    int64_t days = args[0].type() == DataType::kDate
                       ? args[0].int_value()
                       : args[0].AsInt();
    std::string iso = FormatDate(days);
    int y = 0, m = 0, d = 0;
    std::sscanf(iso.c_str(), "%d-%d-%d", &y, &m, &d);
    if (name == "YEAR") return Value::Int(y);
    if (name == "MONTH") return Value::Int(m);
    return Value::Int(d);
  }
  return Status::Internal("unknown scalar function at runtime: " + name);
}

Result<Value> Eval(const BoundExpr& expr, const RowView& view) {
  switch (expr.kind) {
    case BoundKind::kLiteral:
      return expr.literal;
    case BoundKind::kColumn:
      return view.Get(expr.column_index);
    case BoundKind::kUnary: {
      HANA_ASSIGN_OR_RETURN(Value v, Eval(*expr.child0, view));
      if (v.is_null()) return Value::Null();
      if (expr.unary_op == static_cast<int>(UnaryOp::kNot)) {
        return Value::Bool(!IsTruthy(v));
      }
      return v.type() == DataType::kDouble ? Value::Double(-v.double_value())
                                           : Value::Int(-v.AsInt());
    }
    case BoundKind::kBinary:
      return EvalBinary(expr, view);
    case BoundKind::kFunction:
      return EvalFunction(expr, view);
    case BoundKind::kAggregate:
      return Status::Internal("aggregate evaluated outside Aggregate op");
    case BoundKind::kCase: {
      for (const auto& [when, then] : expr.when_clauses) {
        HANA_ASSIGN_OR_RETURN(Value cond, Eval(*when, view));
        if (!cond.is_null() && IsTruthy(cond)) return Eval(*then, view);
      }
      if (expr.child1) return Eval(*expr.child1, view);
      return Value::Null();
    }
    case BoundKind::kCast: {
      HANA_ASSIGN_OR_RETURN(Value v, Eval(*expr.child0, view));
      return v.CastTo(expr.type);
    }
    case BoundKind::kInList: {
      HANA_ASSIGN_OR_RETURN(Value v, Eval(*expr.child0, view));
      if (v.is_null()) return Value::Null();
      bool saw_null = false;
      for (const auto& item : expr.in_list) {
        HANA_ASSIGN_OR_RETURN(Value candidate, Eval(*item, view));
        if (candidate.is_null()) {
          saw_null = true;
          continue;
        }
        if (v.Compare(candidate) == 0) return Value::Bool(!expr.negated);
      }
      if (saw_null) return Value::Null();
      return Value::Bool(expr.negated);
    }
    case BoundKind::kIsNull: {
      HANA_ASSIGN_OR_RETURN(Value v, Eval(*expr.child0, view));
      return Value::Bool(expr.negated ? !v.is_null() : v.is_null());
    }
  }
  return Status::Internal("unknown bound expression kind");
}

}  // namespace

bool IsTruthy(const Value& v) {
  if (v.is_null()) return false;
  if (v.type() == DataType::kBool) return v.bool_value();
  return v.AsDouble() != 0.0;
}

Result<Value> EvalExpr(const plan::BoundExpr& expr,
                       const storage::Chunk& chunk, size_t row) {
  RowView view;
  view.chunk = &chunk;
  view.row = row;
  return Eval(expr, view);
}

Result<Value> EvalExprRow(const plan::BoundExpr& expr,
                          const std::vector<Value>& row) {
  RowView view;
  view.boxed = &row;
  return Eval(expr, view);
}

Result<storage::ColumnVectorPtr> EvalExprColumn(const plan::BoundExpr& expr,
                                                const storage::Chunk& chunk) {
  if (expr.kind == plan::BoundKind::kColumn &&
      expr.column_index < chunk.columns.size()) {
    return chunk.columns[expr.column_index];  // Zero-copy fast path.
  }
  auto out = std::make_shared<storage::ColumnVector>(expr.type);
  size_t n = chunk.num_rows();
  out->Reserve(n);
  for (size_t r = 0; r < n; ++r) {
    HANA_ASSIGN_OR_RETURN(Value v, EvalExpr(expr, chunk, r));
    out->Append(v);
  }
  return out;
}

}  // namespace hana::exec
