#include "exec/operators.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/util.h"
#include "exec/evaluator.h"
#include "exec/radix_join.h"
#include "storage/column_table.h"

namespace hana::exec {

namespace {

using plan::BoundExpr;
using plan::JoinKind;
using plan::LogicalKind;
using plan::LogicalOp;
using storage::ValueHash;

size_t HashKey(const std::vector<Value>& key) {
  size_t h = 0x12345;
  for (const Value& v : key) h = HashCombine(h, v.Hash());
  return h;
}

bool KeysEqualNonNull(const std::vector<Value>& a,
                      const std::vector<Value>& b) {
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].is_null() || b[i].is_null()) return false;  // SQL join rule.
    if (a[i].Compare(b[i]) != 0) return false;
  }
  return true;
}

/// Wraps a ChunkStream produced by the execution context.
class StreamOp : public PhysicalOp {
 public:
  StreamOp(std::shared_ptr<Schema> schema,
           std::function<Result<ChunkStream>()> opener)
      : PhysicalOp(std::move(schema)), opener_(std::move(opener)) {}

  Status Open() override {
    HANA_ASSIGN_OR_RETURN(stream_, opener_());
    return Status::OK();
  }
  Result<std::optional<Chunk>> Next() override { return stream_(); }

 private:
  std::function<Result<ChunkStream>()> opener_;
  ChunkStream stream_;
};

class FilterOp : public PhysicalOp {
 public:
  FilterOp(PhysicalOpPtr child, const BoundExpr* predicate)
      : PhysicalOp(child->schema()),
        child_(std::move(child)),
        predicate_(predicate) {}

  Status Open() override { return child_->Open(); }

  Result<std::optional<Chunk>> Next() override {
    while (true) {
      HANA_ASSIGN_OR_RETURN(std::optional<Chunk> in, child_->Next());
      if (!in.has_value()) return std::optional<Chunk>();
      Chunk out = Chunk::Empty(schema_);
      for (size_t r = 0; r < in->num_rows(); ++r) {
        HANA_ASSIGN_OR_RETURN(Value keep, EvalExpr(*predicate_, *in, r));
        if (!keep.is_null() && IsTruthy(keep)) {
          for (size_t c = 0; c < out.columns.size(); ++c) {
            out.columns[c]->Append(in->columns[c]->GetValue(r));
          }
        }
      }
      if (out.num_rows() > 0) return std::optional<Chunk>(std::move(out));
      // Empty after filtering: keep pulling.
    }
  }

 private:
  PhysicalOpPtr child_;
  const BoundExpr* predicate_;
};

class ProjectOp : public PhysicalOp {
 public:
  ProjectOp(std::shared_ptr<Schema> schema, PhysicalOpPtr child,
            const std::vector<plan::BoundExprPtr>* exprs)
      : PhysicalOp(std::move(schema)),
        child_(std::move(child)),
        exprs_(exprs) {}

  Status Open() override {
    done_ = false;
    return child_ ? child_->Open() : Status::OK();
  }

  Result<std::optional<Chunk>> Next() override {
    if (child_ == nullptr) {
      // Table-less SELECT: exactly one row of constants.
      if (done_) return std::optional<Chunk>();
      done_ = true;
      Chunk out = Chunk::Empty(schema_);
      static const std::vector<Value> kEmptyRow;
      for (size_t c = 0; c < exprs_->size(); ++c) {
        HANA_ASSIGN_OR_RETURN(Value v, EvalExprRow(*(*exprs_)[c], kEmptyRow));
        out.columns[c]->Append(v);
      }
      return std::optional<Chunk>(std::move(out));
    }
    HANA_ASSIGN_OR_RETURN(std::optional<Chunk> in, child_->Next());
    if (!in.has_value()) return std::optional<Chunk>();
    Chunk out = Chunk::Empty(schema_);
    for (size_t r = 0; r < in->num_rows(); ++r) {
      for (size_t c = 0; c < exprs_->size(); ++c) {
        HANA_ASSIGN_OR_RETURN(Value v, EvalExpr(*(*exprs_)[c], *in, r));
        out.columns[c]->Append(v);
      }
    }
    return std::optional<Chunk>(std::move(out));
  }

 private:
  PhysicalOpPtr child_;
  const std::vector<plan::BoundExprPtr>* exprs_;
  bool done_ = false;
};

class LimitOp : public PhysicalOp {
 public:
  LimitOp(PhysicalOpPtr child, int64_t limit)
      : PhysicalOp(child->schema()), child_(std::move(child)), limit_(limit) {}

  Status Open() override {
    emitted_ = 0;
    return child_->Open();
  }

  Result<std::optional<Chunk>> Next() override {
    if (emitted_ >= limit_) return std::optional<Chunk>();
    HANA_ASSIGN_OR_RETURN(std::optional<Chunk> in, child_->Next());
    if (!in.has_value()) return std::optional<Chunk>();
    int64_t remaining = limit_ - emitted_;
    if (static_cast<int64_t>(in->num_rows()) <= remaining) {
      emitted_ += static_cast<int64_t>(in->num_rows());
      return in;
    }
    Chunk out = Chunk::Empty(schema_);
    for (int64_t r = 0; r < remaining; ++r) {
      for (size_t c = 0; c < out.columns.size(); ++c) {
        out.columns[c]->Append(in->columns[c]->GetValue(static_cast<size_t>(r)));
      }
    }
    emitted_ = limit_;
    return std::optional<Chunk>(std::move(out));
  }

 private:
  PhysicalOpPtr child_;
  int64_t limit_;
  int64_t emitted_ = 0;
};

/// RAII bracket for concurrent federation dispatch (exception-safe).
struct DispatchRegion {
  explicit DispatchRegion(ExecContext* c) : ctx(c) {
    ctx->BeginConcurrentRemoteDispatch();
  }
  ~DispatchRegion() { ctx->EndConcurrentRemoteDispatch(); }
  ExecContext* ctx;
};

class UnionOp : public PhysicalOp {
 public:
  UnionOp(std::shared_ptr<Schema> schema, std::vector<PhysicalOpPtr> children,
          ExecContext* ctx)
      : PhysicalOp(std::move(schema)),
        children_(std::move(children)),
        ctx_(ctx) {}

  Status Open() override {
    current_ = 0;
    ParallelPolicy policy = ctx_->parallel_policy();
    if (policy.pool != nullptr && policy.dop > 1 && children_.size() > 1) {
      // Union Plan execution (Section 5): open every branch at once so
      // remote latencies overlap — the SDA runtime charges virtual time
      // as max over branches instead of their sum.
      std::vector<Status> statuses(children_.size());
      DispatchRegion region(ctx_);
      policy.pool->ParallelFor(
          children_.size(),
          [&](size_t i) { statuses[i] = children_[i]->Open(); }, policy.dop);
      for (Status& s : statuses) HANA_RETURN_IF_ERROR(s);
      return Status::OK();
    }
    for (auto& c : children_) HANA_RETURN_IF_ERROR(c->Open());
    return Status::OK();
  }

  Result<std::optional<Chunk>> Next() override {
    while (current_ < children_.size()) {
      HANA_ASSIGN_OR_RETURN(std::optional<Chunk> in,
                            children_[current_]->Next());
      if (in.has_value()) {
        // Re-stamp with the union's schema (children may use different
        // qualified names).
        in->schema = schema_;
        return in;
      }
      ++current_;
    }
    return std::optional<Chunk>();
  }

 private:
  std::vector<PhysicalOpPtr> children_;
  ExecContext* ctx_;
  size_t current_ = 0;
};

/// Materializes a child into boxed rows.
Result<std::vector<std::vector<Value>>> Materialize(PhysicalOp* op) {
  std::vector<std::vector<Value>> rows;
  HANA_RETURN_IF_ERROR(op->Open());
  while (true) {
    HANA_ASSIGN_OR_RETURN(std::optional<Chunk> chunk, op->Next());
    if (!chunk.has_value()) break;
    for (size_t r = 0; r < chunk->num_rows(); ++r) {
      rows.push_back(chunk->Row(r));
    }
  }
  return rows;
}

/// `parallel_ok` is false under a LIMIT whose input streams lazily: an
/// eager morsel pipeline there would scan far past the cutoff. Blocking
/// operators (aggregate, sort, join builds) consume their whole input
/// anyway and reset the flag for their subtrees.
Result<PhysicalOpPtr> BuildPhysicalImpl(const plan::LogicalOp& logical,
                                        ExecContext* ctx, bool parallel_ok);

/// The operator chain a MorselPipelineOp can absorb:
/// Aggregate?(Project?(Join?(Filter?(Scan), build))). The probe side of
/// a fused join is the chain continuing down to the scan; the build
/// side is the join's other child (an arbitrary subtree).
struct MorselPipeline {
  const LogicalOp* aggregate = nullptr;
  const LogicalOp* project = nullptr;
  /// Hash-joinable join fused into the pipeline (null when absent).
  const LogicalOp* join = nullptr;
  /// The join's build-side subtree (the child not on the probe chain).
  const LogicalOp* build = nullptr;
  /// True when the optimizer marked the LEFT child as the build side
  /// (inner joins only); the probe chain is then the right child.
  bool build_is_left = false;
  const LogicalOp* filter = nullptr;  // Probe-side filter, below join.
  const LogicalOp* scan = nullptr;    // Probe scan.
};

std::optional<MorselPipeline> MatchMorselPipeline(const LogicalOp& op) {
  MorselPipeline p;
  const LogicalOp* cur = &op;
  if (cur->kind == LogicalKind::kAggregate) {
    p.aggregate = cur;
    cur = cur->children[0].get();
  }
  if (cur->kind == LogicalKind::kProject && !cur->children.empty()) {
    p.project = cur;
    cur = cur->children[0].get();
  }
  if (cur->kind == LogicalKind::kJoin && cur->condition != nullptr &&
      !cur->semijoin_pushdown && cur->children.size() == 2 &&
      (cur->join_kind == JoinKind::kInner ||
       cur->join_kind == JoinKind::kLeft ||
       cur->join_kind == JoinKind::kSemi ||
       cur->join_kind == JoinKind::kAnti)) {
    p.join = cur;
    p.build_is_left =
        cur->join_kind == JoinKind::kInner && cur->build_left;
    p.build = cur->children[p.build_is_left ? 0 : 1].get();
    cur = cur->children[p.build_is_left ? 1 : 0].get();
  }
  if (cur->kind == LogicalKind::kFilter) {
    p.filter = cur;
    cur = cur->children[0].get();
  }
  if (cur->kind != LogicalKind::kScan) return std::nullopt;
  p.scan = cur;
  return p;
}

/// Chunk-at-a-time filter: keeps rows whose predicate is TRUE.
Result<Chunk> FilterChunk(const BoundExpr& predicate, const Chunk& in) {
  Chunk out = Chunk::Empty(in.schema);
  for (size_t r = 0; r < in.num_rows(); ++r) {
    HANA_ASSIGN_OR_RETURN(Value keep, EvalExpr(predicate, in, r));
    if (keep.is_null() || !IsTruthy(keep)) continue;
    out.AppendRowFrom(in, r);
  }
  return out;
}

/// Chunk-at-a-time projection into the project node's schema.
Result<Chunk> ProjectChunk(const LogicalOp& project, const Chunk& in) {
  Chunk out = Chunk::Empty(project.schema);
  for (size_t r = 0; r < in.num_rows(); ++r) {
    for (size_t c = 0; c < project.exprs.size(); ++c) {
      HANA_ASSIGN_OR_RETURN(Value v, EvalExpr(*project.exprs[c], in, r));
      out.columns[c]->Append(v);
    }
  }
  return out;
}

/// Shared probe logic for hash-based joins (serial row-at-a-time path;
/// parallel plans run joins through MorselPipelineOp's radix join
/// instead). With `build_left` (optimizer-selected, inner joins only)
/// the LEFT child is built and the right child probes; output column
/// order stays left++right either way.
class HashJoinOp : public PhysicalOp {
 public:
  HashJoinOp(std::shared_ptr<Schema> schema, JoinKind kind,
             PhysicalOpPtr left, PhysicalOpPtr right,
             plan::JoinConditionParts parts, bool build_left)
      : PhysicalOp(std::move(schema)),
        kind_(kind),
        left_(std::move(left)),
        right_(std::move(right)),
        parts_(std::move(parts)),
        build_left_(build_left && kind == JoinKind::kInner) {}

  Status Open() override {
    PhysicalOp* probe = build_left_ ? right_.get() : left_.get();
    PhysicalOp* build = build_left_ ? left_.get() : right_.get();
    HANA_RETURN_IF_ERROR(probe->Open());
    HANA_ASSIGN_OR_RETURN(build_rows_, Materialize(build));
    table_.clear();
    build_keys_.clear();
    build_keys_.reserve(build_rows_.size());
    for (size_t i = 0; i < build_rows_.size(); ++i) {
      std::vector<Value> key;
      key.reserve(parts_.equi_keys.size());
      for (const auto& ek : parts_.equi_keys) {
        const BoundExpr& expr = build_left_ ? *ek.left : *ek.right;
        HANA_ASSIGN_OR_RETURN(Value v, EvalExprRow(expr, build_rows_[i]));
        key.push_back(std::move(v));
      }
      table_.emplace(HashKey(key), i);
      build_keys_.push_back(std::move(key));
    }
    // Fixed by the schemas; hoisted out of the per-chunk Next() loop.
    build_width_ = kind_ == JoinKind::kSemi || kind_ == JoinKind::kAnti
                       ? 0
                       : schema_->num_columns() -
                             (build_left_ ? right_ : left_)
                                 ->schema()
                                 ->num_columns();
    return Status::OK();
  }

  Result<std::optional<Chunk>> Next() override {
    PhysicalOp* probe = build_left_ ? right_.get() : left_.get();
    std::vector<Value> key;  // Reused across rows; cleared per row.
    key.reserve(parts_.equi_keys.size());
    while (true) {
      HANA_ASSIGN_OR_RETURN(std::optional<Chunk> in, probe->Next());
      if (!in.has_value()) return std::optional<Chunk>();
      Chunk out = Chunk::Empty(schema_);
      for (size_t r = 0; r < in->num_rows(); ++r) {
        std::vector<Value> probe_row = in->Row(r);
        key.clear();
        bool key_null = false;
        for (const auto& ek : parts_.equi_keys) {
          const BoundExpr& expr = build_left_ ? *ek.right : *ek.left;
          HANA_ASSIGN_OR_RETURN(Value v, EvalExprRow(expr, probe_row));
          if (v.is_null()) key_null = true;
          key.push_back(std::move(v));
        }
        bool matched = false;
        if (!key_null) {
          auto [lo, hi] = table_.equal_range(HashKey(key));
          for (auto it = lo; it != hi; ++it) {
            size_t b = it->second;
            if (!KeysEqualNonNull(key, build_keys_[b])) continue;
            // Residual over the combined row (left++right order).
            std::vector<Value> combined =
                build_left_ ? build_rows_[b] : probe_row;
            const std::vector<Value>& tail =
                build_left_ ? probe_row : build_rows_[b];
            combined.insert(combined.end(), tail.begin(), tail.end());
            if (parts_.residual != nullptr) {
              HANA_ASSIGN_OR_RETURN(Value keep,
                                    EvalExprRow(*parts_.residual, combined));
              if (keep.is_null() || !IsTruthy(keep)) continue;
            }
            matched = true;
            if (kind_ == JoinKind::kInner || kind_ == JoinKind::kLeft) {
              out.AppendRow(combined);
            } else if (kind_ == JoinKind::kSemi) {
              out.AppendRow(probe_row);
              break;
            } else {  // kAnti: first match disqualifies.
              break;
            }
          }
        }
        if (!matched) {
          if (kind_ == JoinKind::kAnti) {
            out.AppendRow(probe_row);
          } else if (kind_ == JoinKind::kLeft) {
            std::vector<Value> combined = probe_row;
            combined.resize(probe_row.size() + build_width_, Value::Null());
            out.AppendRow(combined);
          }
        }
      }
      if (out.num_rows() > 0) return std::optional<Chunk>(std::move(out));
    }
  }

 private:
  JoinKind kind_;
  PhysicalOpPtr left_;
  PhysicalOpPtr right_;
  plan::JoinConditionParts parts_;
  bool build_left_;
  size_t build_width_ = 0;  // Build-side column count in the output.
  std::vector<std::vector<Value>> build_rows_;
  std::vector<std::vector<Value>> build_keys_;
  std::unordered_multimap<size_t, size_t> table_;
};

class NestedLoopJoinOp : public PhysicalOp {
 public:
  NestedLoopJoinOp(std::shared_ptr<Schema> schema, JoinKind kind,
                   PhysicalOpPtr left, PhysicalOpPtr right,
                   const BoundExpr* condition)
      : PhysicalOp(std::move(schema)),
        kind_(kind),
        left_(std::move(left)),
        right_(std::move(right)),
        condition_(condition) {}

  Status Open() override {
    HANA_RETURN_IF_ERROR(left_->Open());
    HANA_ASSIGN_OR_RETURN(build_rows_, Materialize(right_.get()));
    return Status::OK();
  }

  Result<std::optional<Chunk>> Next() override {
    size_t right_width = kind_ == JoinKind::kSemi || kind_ == JoinKind::kAnti
                             ? 0
                             : schema_->num_columns() -
                                   left_->schema()->num_columns();
    while (true) {
      HANA_ASSIGN_OR_RETURN(std::optional<Chunk> in, left_->Next());
      if (!in.has_value()) return std::optional<Chunk>();
      Chunk out = Chunk::Empty(schema_);
      for (size_t r = 0; r < in->num_rows(); ++r) {
        std::vector<Value> left_row = in->Row(r);
        bool matched = false;
        for (const auto& build : build_rows_) {
          std::vector<Value> combined = left_row;
          combined.insert(combined.end(), build.begin(), build.end());
          if (condition_ != nullptr) {
            HANA_ASSIGN_OR_RETURN(Value keep,
                                  EvalExprRow(*condition_, combined));
            if (keep.is_null() || !IsTruthy(keep)) continue;
          }
          matched = true;
          if (kind_ == JoinKind::kInner || kind_ == JoinKind::kLeft ||
              kind_ == JoinKind::kCross) {
            out.AppendRow(combined);
          } else {
            break;  // Semi/anti need only existence.
          }
        }
        if (kind_ == JoinKind::kSemi && matched) out.AppendRow(left_row);
        if (kind_ == JoinKind::kAnti && !matched) out.AppendRow(left_row);
        if (kind_ == JoinKind::kLeft && !matched) {
          std::vector<Value> combined = left_row;
          combined.resize(left_row.size() + right_width, Value::Null());
          out.AppendRow(combined);
        }
      }
      if (out.num_rows() > 0) return std::optional<Chunk>(std::move(out));
    }
  }

 private:
  JoinKind kind_;
  PhysicalOpPtr left_;
  PhysicalOpPtr right_;
  const BoundExpr* condition_;
  std::vector<std::vector<Value>> build_rows_;
};

/// Aggregation state for one (group, aggregate) pair.
struct AggState {
  int64_t count = 0;
  double sum_d = 0.0;
  int64_t sum_i = 0;
  bool any = false;
  Value min_v;
  Value max_v;
  std::unique_ptr<std::unordered_set<Value, ValueHash>> distinct;
};

Value FinalizeAgg(const BoundExpr* agg, const AggState& st) {
  switch (agg->agg_kind) {
    case plan::AggKind::kCountStar:
    case plan::AggKind::kCount:
      return Value::Int(st.count);
    case plan::AggKind::kSum:
      if (!st.any) return Value::Null();
      return agg->type == DataType::kDouble ? Value::Double(st.sum_d)
                                            : Value::Int(st.sum_i);
    case plan::AggKind::kAvg:
      if (!st.any || st.count == 0) return Value::Null();
      return Value::Double(st.sum_d / static_cast<double>(st.count));
    case plan::AggKind::kMin:
      return st.min_v;
    case plan::AggKind::kMax:
      return st.max_v;
  }
  return Value::Null();
}

/// Folds `src` into `dst`. DISTINCT aggregates re-accumulate the source
/// set element by element so values seen by both partials are not
/// double-counted.
void MergeAggState(const BoundExpr& agg, AggState& dst, AggState& src) {
  if (agg.agg_kind == plan::AggKind::kCountStar) {
    dst.count += src.count;
    return;
  }
  if (agg.distinct) {
    if (src.distinct == nullptr) return;
    if (dst.distinct == nullptr) {
      dst.distinct = std::make_unique<std::unordered_set<Value, ValueHash>>();
    }
    for (const Value& v : *src.distinct) {
      if (!dst.distinct->insert(v).second) continue;
      dst.any = true;
      switch (agg.agg_kind) {
        case plan::AggKind::kCount:
          ++dst.count;
          break;
        case plan::AggKind::kSum:
        case plan::AggKind::kAvg:
          ++dst.count;
          dst.sum_d += v.AsDouble();
          dst.sum_i += v.AsInt();
          break;
        case plan::AggKind::kMin:
          if (dst.min_v.is_null() || v.Compare(dst.min_v) < 0) dst.min_v = v;
          break;
        case plan::AggKind::kMax:
          if (dst.max_v.is_null() || v.Compare(dst.max_v) > 0) dst.max_v = v;
          break;
        default:
          break;
      }
    }
    return;
  }
  dst.count += src.count;
  dst.sum_d += src.sum_d;
  dst.sum_i += src.sum_i;
  dst.any = dst.any || src.any;
  if (!src.min_v.is_null() &&
      (dst.min_v.is_null() || src.min_v.Compare(dst.min_v) < 0)) {
    dst.min_v = src.min_v;
  }
  if (!src.max_v.is_null() &&
      (dst.max_v.is_null() || src.max_v.Compare(dst.max_v) > 0)) {
    dst.max_v = src.max_v;
  }
}

/// Hash table mapping group keys to per-aggregate states; groups keep
/// first-seen order. Shared by the serial HashAggregateOp and the
/// per-morsel partial aggregation of the parallel pipeline.
class GroupTable {
 public:
  GroupTable(const std::vector<plan::BoundExprPtr>* group_by,
             const std::vector<plan::BoundExprPtr>* aggregates)
      : group_by_(group_by), aggregates_(aggregates) {}

  size_t num_groups() const { return keys_.size(); }

  Status Accumulate(const Chunk& chunk, size_t row) {
    std::vector<Value> key;
    key.reserve(group_by_->size());
    for (const auto& g : *group_by_) {
      HANA_ASSIGN_OR_RETURN(Value v, EvalExpr(*g, chunk, row));
      key.push_back(std::move(v));
    }
    std::vector<AggState>& states = states_[FindOrCreate(key)];
    for (size_t a = 0; a < aggregates_->size(); ++a) {
      const BoundExpr& agg = *(*aggregates_)[a];
      AggState& st = states[a];
      if (agg.agg_kind == plan::AggKind::kCountStar) {
        ++st.count;
        continue;
      }
      HANA_ASSIGN_OR_RETURN(Value v, EvalExpr(*agg.child0, chunk, row));
      if (v.is_null()) continue;
      if (agg.distinct) {
        if (st.distinct == nullptr) {
          st.distinct =
              std::make_unique<std::unordered_set<Value, ValueHash>>();
        }
        if (!st.distinct->insert(v).second) continue;
      }
      st.any = true;
      switch (agg.agg_kind) {
        case plan::AggKind::kCount:
          ++st.count;
          break;
        case plan::AggKind::kSum:
        case plan::AggKind::kAvg:
          ++st.count;
          st.sum_d += v.AsDouble();
          st.sum_i += v.AsInt();
          break;
        case plan::AggKind::kMin:
          if (st.min_v.is_null() || v.Compare(st.min_v) < 0) st.min_v = v;
          break;
        case plan::AggKind::kMax:
          if (st.max_v.is_null() || v.Compare(st.max_v) > 0) st.max_v = v;
          break;
        default:
          break;
      }
    }
    return Status::OK();
  }

  /// Folds `src` into this table, visiting src groups in their
  /// first-seen order. Merging morsel partials in ascending morsel
  /// order therefore reproduces the exact group order (and floating
  /// point sums, morsel by morsel) of any other run with the same
  /// morsel decomposition — the thread count never matters.
  void MergeFrom(GroupTable& src) {
    for (size_t g = 0; g < src.keys_.size(); ++g) {
      std::vector<AggState>& states = states_[FindOrCreate(src.keys_[g])];
      for (size_t a = 0; a < aggregates_->size(); ++a) {
        MergeAggState(*(*aggregates_)[a], states[a], src.states_[g][a]);
      }
    }
  }

  /// A global aggregate over an empty input still emits one row.
  void EnsureGlobalGroup() {
    if (group_by_->empty() && keys_.empty() && !aggregates_->empty()) {
      keys_.push_back({});
      states_.emplace_back(aggregates_->size());
    }
  }

  /// Boxes group g as an output row: key values then finalized
  /// aggregates.
  std::vector<Value> EmitRow(size_t g) const {
    std::vector<Value> row = keys_[g];
    row.reserve(row.size() + aggregates_->size());
    for (size_t a = 0; a < aggregates_->size(); ++a) {
      row.push_back(FinalizeAgg((*aggregates_)[a].get(), states_[g][a]));
    }
    return row;
  }

 private:
  size_t FindOrCreate(const std::vector<Value>& key) {
    size_t h = HashKey(key);
    auto [lo, hi] = groups_.equal_range(h);
    for (auto it = lo; it != hi; ++it) {
      const std::vector<Value>& existing = keys_[it->second];
      bool equal = true;
      for (size_t i = 0; i < key.size(); ++i) {
        if (key[i].Compare(existing[i]) != 0) {  // Group-by: NULL == NULL.
          equal = false;
          break;
        }
      }
      if (equal) return it->second;
    }
    size_t group_index = keys_.size();
    keys_.push_back(key);
    states_.emplace_back(aggregates_->size());
    groups_.emplace(h, group_index);
    return group_index;
  }

  const std::vector<plan::BoundExprPtr>* group_by_;
  const std::vector<plan::BoundExprPtr>* aggregates_;
  std::unordered_multimap<size_t, size_t> groups_;
  std::vector<std::vector<Value>> keys_;
  std::vector<std::vector<AggState>> states_;
};

class HashAggregateOp : public PhysicalOp {
 public:
  HashAggregateOp(std::shared_ptr<Schema> schema, PhysicalOpPtr child,
                  const std::vector<plan::BoundExprPtr>* group_by,
                  const std::vector<plan::BoundExprPtr>* aggregates)
      : PhysicalOp(std::move(schema)),
        child_(std::move(child)),
        group_by_(group_by),
        aggregates_(aggregates),
        table_(group_by, aggregates) {}

  Status Open() override {
    table_ = GroupTable(group_by_, aggregates_);
    emitted_ = 0;
    HANA_RETURN_IF_ERROR(child_->Open());
    while (true) {
      HANA_ASSIGN_OR_RETURN(std::optional<Chunk> in, child_->Next());
      if (!in.has_value()) break;
      for (size_t r = 0; r < in->num_rows(); ++r) {
        HANA_RETURN_IF_ERROR(table_.Accumulate(*in, r));
      }
    }
    table_.EnsureGlobalGroup();
    return Status::OK();
  }

  Result<std::optional<Chunk>> Next() override {
    if (emitted_ >= table_.num_groups()) return std::optional<Chunk>();
    Chunk out = Chunk::Empty(schema_);
    size_t end =
        std::min(table_.num_groups(), emitted_ + storage::kDefaultChunkRows);
    for (size_t g = emitted_; g < end; ++g) out.AppendRow(table_.EmitRow(g));
    emitted_ = end;
    return std::optional<Chunk>(std::move(out));
  }

 private:
  PhysicalOpPtr child_;
  const std::vector<plan::BoundExprPtr>* group_by_;
  const std::vector<plan::BoundExprPtr>* aggregates_;
  GroupTable table_;
  size_t emitted_ = 0;
};

/// Morsel-driven parallel pipeline: partitioned scan → [filter] →
/// [radix hash join] → [project] → [partial aggregate], one task per
/// morsel. The morsel decomposition, per-morsel processing and the
/// merge/emission order are all fixed by the plan, so output is
/// bit-identical for any degree of parallelism (including 1).
///
/// With a fused join, Open() first builds a RadixJoinTable over the
/// build subtree (morsel-parallel when that subtree is itself a
/// partitioned scan chain, else a serial drain), then probes it from
/// the pipeline's scan morsels. Probe workers reuse per-worker-slot key
/// scratch; which slot runs which morsel varies with scheduling, but
/// every per-morsel result depends only on the morsel index.
class MorselPipelineOp : public PhysicalOp {
 public:
  MorselPipelineOp(std::shared_ptr<Schema> schema, ExecContext* ctx,
                   MorselPipeline pipeline)
      : PhysicalOp(std::move(schema)), ctx_(ctx), p_(pipeline) {}

  Status Open() override {
    chunks_.clear();
    merged_.reset();
    join_table_.reset();
    emitted_groups_ = 0;
    emit_morsel_ = 0;
    emit_chunk_ = 0;
    ParallelPolicy policy = ctx_->parallel_policy();
    HANA_ASSIGN_OR_RETURN(
        std::optional<PartitionSource> source,
        ctx_->OpenPartitionedScan(*p_.scan, policy.morsel_rows));
    if (!source.has_value()) {
      return Status::Internal("morsel pipeline over a non-partitioned scan");
    }
    if (p_.join != nullptr) HANA_RETURN_IF_ERROR(BuildJoinTable(policy));
    size_t n = source->num_morsels;
    std::vector<std::unique_ptr<GroupTable>> partials(p_.aggregate ? n : 0);
    chunks_.assign(n, {});
    std::vector<Status> statuses(n);
    bool parallel = policy.pool != nullptr && policy.dop > 1 && n > 1;
    probe_scratch_.assign(
        parallel ? policy.pool->WorkerSlots(n, policy.dop) : 1,
        RadixJoinTable::ProbeKeys{});
    auto run_morsel = [&](size_t worker, size_t m) {
      GroupTable* partial = nullptr;
      if (p_.aggregate != nullptr) {
        partials[m] = std::make_unique<GroupTable>(&p_.aggregate->group_by,
                                                   &p_.aggregate->aggregates);
        partial = partials[m].get();
      }
      statuses[m] = ProcessMorsel(*source, m, partial, &chunks_[m], worker);
    };
    if (parallel) {
      policy.pool->ParallelForWorker(n, run_morsel, policy.dop);
    } else {
      for (size_t m = 0; m < n; ++m) run_morsel(0, m);
    }
    // First failure in morsel order wins (deterministic error too).
    for (Status& s : statuses) HANA_RETURN_IF_ERROR(s);
    if (p_.aggregate != nullptr) {
      merged_ = std::make_unique<GroupTable>(&p_.aggregate->group_by,
                                             &p_.aggregate->aggregates);
      for (auto& partial : partials) merged_->MergeFrom(*partial);
      merged_->EnsureGlobalGroup();
      chunks_.clear();
    }
    join_table_.reset();  // Probe finished; release the build side.
    probe_scratch_.clear();
    return Status::OK();
  }

  Result<std::optional<Chunk>> Next() override {
    if (merged_ != nullptr) {
      if (emitted_groups_ >= merged_->num_groups()) {
        return std::optional<Chunk>();
      }
      Chunk out = Chunk::Empty(schema_);
      size_t end = std::min(merged_->num_groups(),
                            emitted_groups_ + storage::kDefaultChunkRows);
      for (size_t g = emitted_groups_; g < end; ++g) {
        out.AppendRow(merged_->EmitRow(g));
      }
      emitted_groups_ = end;
      return std::optional<Chunk>(std::move(out));
    }
    while (emit_morsel_ < chunks_.size()) {
      if (emit_chunk_ < chunks_[emit_morsel_].size()) {
        return std::optional<Chunk>(
            std::move(chunks_[emit_morsel_][emit_chunk_++]));
      }
      ++emit_morsel_;
      emit_chunk_ = 0;
    }
    return std::optional<Chunk>();
  }

 private:
  /// Builds the radix hash table over the join's build subtree. When
  /// the subtree is itself a morsel-scannable chain over a partitioned
  /// table, build morsels are partitioned in parallel (one staging
  /// buffer set per morsel — no locks); otherwise the subtree's
  /// physical plan is drained serially as a single morsel. Partition
  /// finalization parallelizes over the radix partitions either way.
  Status BuildJoinTable(const ParallelPolicy& policy) {
    size_t left_arity = p_.join->children[0]->schema->num_columns();
    join_parts_ = plan::AnalyzeJoinCondition(*p_.join->condition, left_arity);
    if (join_parts_.equi_keys.empty()) {
      return Status::Internal("morsel join pipeline without equi keys");
    }
    bool vectorized = plan::EquiKeysVectorizable(join_parts_);
    std::vector<const BoundExpr*> build_keys;
    probe_key_exprs_.clear();
    for (const auto& ek : join_parts_.equi_keys) {
      build_keys.push_back(p_.build_is_left ? ek.left.get() : ek.right.get());
      probe_key_exprs_.push_back(p_.build_is_left ? ek.right.get()
                                                  : ek.left.get());
    }
    join_table_ = std::make_unique<RadixJoinTable>(
        p_.build->schema, std::move(build_keys), vectorized);
    if (!vectorized) {
      GlobalJoinExecStats().boxed_key_builds.fetch_add(
          1, std::memory_order_relaxed);
    }
    std::optional<MorselPipeline> bp = MatchMorselPipeline(*p_.build);
    if (bp.has_value() && bp->join == nullptr && bp->aggregate == nullptr &&
        policy.pool != nullptr) {
      HANA_ASSIGN_OR_RETURN(
          std::optional<PartitionSource> bsource,
          ctx_->OpenPartitionedScan(*bp->scan, policy.morsel_rows));
      if (bsource.has_value()) {
        size_t n = bsource->num_morsels;
        join_table_->SetNumMorsels(n);
        std::vector<Status> statuses(n);
        auto build_morsel = [&](size_t m) {
          Status inner = Status::OK();
          Status scan_status = bsource->scan_morsel(m, [&](const Chunk& in) {
            inner = [&]() -> Status {
              const Chunk* stage = &in;
              Chunk owned;
              if (bp->filter != nullptr) {
                HANA_ASSIGN_OR_RETURN(
                    owned, FilterChunk(*bp->filter->predicate, *stage));
                stage = &owned;
              }
              if (bp->project != nullptr) {
                HANA_ASSIGN_OR_RETURN(owned,
                                      ProjectChunk(*bp->project, *stage));
                stage = &owned;
              }
              return join_table_->AddBuildChunk(m, *stage);
            }();
            return inner.ok();
          });
          statuses[m] = inner.ok() ? scan_status : inner;
        };
        if (policy.dop > 1 && n > 1) {
          policy.pool->ParallelFor(n, build_morsel, policy.dop);
        } else {
          for (size_t m = 0; m < n; ++m) build_morsel(m);
        }
        for (Status& s : statuses) HANA_RETURN_IF_ERROR(s);
        return join_table_->Finalize(policy.pool, policy.dop);
      }
    }
    // Serial drain: the whole build side counts as one morsel, so the
    // concatenation order is trivially the drain order.
    HANA_ASSIGN_OR_RETURN(PhysicalOpPtr build_op,
                          BuildPhysicalImpl(*p_.build, ctx_, true));
    HANA_RETURN_IF_ERROR(build_op->Open());
    join_table_->SetNumMorsels(1);
    while (true) {
      HANA_ASSIGN_OR_RETURN(std::optional<Chunk> chunk, build_op->Next());
      if (!chunk.has_value()) break;
      HANA_RETURN_IF_ERROR(join_table_->AddBuildChunk(0, *chunk));
    }
    return join_table_->Finalize(policy.pool, policy.dop);
  }

  /// Probes one (already filtered) scan chunk against the radix table,
  /// emitting joined rows in probe-row order with matches per probe row
  /// in ascending build-row order. Output columns keep the join's
  /// left++right layout regardless of which side built.
  Result<Chunk> ProbeChunk(const Chunk& probe, size_t worker) {
    RadixJoinTable::ProbeKeys& scratch = probe_scratch_[worker];
    HANA_RETURN_IF_ERROR(
        join_table_->ComputeProbeKeys(probe, probe_key_exprs_, &scratch));
    JoinKind kind = p_.join->join_kind;
    Chunk out = Chunk::Empty(p_.join->schema);
    size_t probe_width = probe.num_columns();
    size_t build_width = out.num_columns() > probe_width
                             ? out.num_columns() - probe_width
                             : 0;  // Semi/anti emit probe columns only.
    size_t probe_off = p_.build_is_left ? build_width : 0;
    size_t build_off = p_.build_is_left ? 0 : probe_width;
    const BoundExpr* residual = join_parts_.residual.get();
    for (size_t r = 0; r < probe.num_rows(); ++r) {
      bool matched = false;
      Status status = Status::OK();
      join_table_->ForEachMatch(
          scratch, r,
          [&](const RadixJoinTable::Partition& part, size_t b) {
            if (residual != nullptr) {
              std::vector<Value> combined =
                  p_.build_is_left ? part.payload.Row(b) : probe.Row(r);
              std::vector<Value> tail =
                  p_.build_is_left ? probe.Row(r) : part.payload.Row(b);
              combined.insert(combined.end(),
                              std::make_move_iterator(tail.begin()),
                              std::make_move_iterator(tail.end()));
              Result<Value> keep = EvalExprRow(*residual, combined);
              if (!keep.ok()) {
                status = keep.status();
                return false;
              }
              if (keep->is_null() || !IsTruthy(*keep)) return true;
            }
            matched = true;
            switch (kind) {
              case JoinKind::kInner:
              case JoinKind::kLeft:
                for (size_t c = 0; c < probe_width; ++c) {
                  out.columns[probe_off + c]->AppendFrom(*probe.columns[c],
                                                         r);
                }
                for (size_t c = 0; c < build_width; ++c) {
                  out.columns[build_off + c]->AppendFrom(
                      *part.payload.columns[c], b);
                }
                return true;
              case JoinKind::kSemi:
                out.AppendRowFrom(probe, r);
                return false;  // Existence established.
              default:
                return false;  // kAnti: first match disqualifies.
            }
          });
      HANA_RETURN_IF_ERROR(status);
      if (!matched) {
        if (kind == JoinKind::kAnti) {
          out.AppendRowFrom(probe, r);
        } else if (kind == JoinKind::kLeft) {
          for (size_t c = 0; c < probe_width; ++c) {
            out.columns[c]->AppendFrom(*probe.columns[c], r);
          }
          for (size_t c = 0; c < build_width; ++c) {
            out.columns[probe_width + c]->AppendNull();
          }
        }
      }
    }
    return out;
  }

  Status ProcessMorsel(const PartitionSource& source, size_t m,
                       GroupTable* partial, std::vector<Chunk>* out_chunks,
                       size_t worker) {
    Status inner = Status::OK();
    Status scan_status = source.scan_morsel(m, [&](const Chunk& in) {
      inner = ProcessChunk(in, partial, out_chunks, worker);
      return inner.ok();
    });
    HANA_RETURN_IF_ERROR(inner);
    return scan_status;
  }

  /// Runs the filter/join/project stages over one scanned chunk, then
  /// either folds the rows into the morsel's partial aggregate or
  /// stores the chunk for ordered emission.
  Status ProcessChunk(const Chunk& in, GroupTable* partial,
                      std::vector<Chunk>* out_chunks, size_t worker) {
    Chunk owned;
    const Chunk* stage = &in;
    if (p_.filter != nullptr) {
      HANA_ASSIGN_OR_RETURN(owned, FilterChunk(*p_.filter->predicate, *stage));
      stage = &owned;
    }
    if (p_.join != nullptr) {
      HANA_ASSIGN_OR_RETURN(owned, ProbeChunk(*stage, worker));
      stage = &owned;
    }
    if (p_.project != nullptr) {
      HANA_ASSIGN_OR_RETURN(owned, ProjectChunk(*p_.project, *stage));
      stage = &owned;
    }
    if (partial != nullptr) {
      for (size_t r = 0; r < stage->num_rows(); ++r) {
        HANA_RETURN_IF_ERROR(partial->Accumulate(*stage, r));
      }
      return Status::OK();
    }
    if (stage->num_rows() == 0) return Status::OK();
    Chunk out = stage == &in ? in : std::move(owned);
    out.schema = schema_;
    out_chunks->push_back(std::move(out));
    return Status::OK();
  }

  ExecContext* ctx_;
  MorselPipeline p_;
  // Join runtime state, alive only during Open().
  std::unique_ptr<RadixJoinTable> join_table_;
  plan::JoinConditionParts join_parts_;
  std::vector<const BoundExpr*> probe_key_exprs_;
  std::vector<RadixJoinTable::ProbeKeys> probe_scratch_;  // One per slot.
  // Per-morsel output chunks (streaming pipelines), emitted in morsel
  // order; or the merged group table (aggregating pipelines).
  std::vector<std::vector<Chunk>> chunks_;
  std::unique_ptr<GroupTable> merged_;
  size_t emitted_groups_ = 0;
  size_t emit_morsel_ = 0;
  size_t emit_chunk_ = 0;
};

class SortOp : public PhysicalOp {
 public:
  SortOp(PhysicalOpPtr child, const std::vector<plan::SortKey>* keys)
      : PhysicalOp(child->schema()), child_(std::move(child)), keys_(keys) {}

  Status Open() override {
    emitted_ = 0;
    HANA_ASSIGN_OR_RETURN(rows_, Materialize(child_.get()));
    std::vector<std::vector<Value>> sort_keys(rows_.size());
    for (size_t i = 0; i < rows_.size(); ++i) {
      for (const auto& k : *keys_) {
        HANA_ASSIGN_OR_RETURN(Value v, EvalExprRow(*k.expr, rows_[i]));
        sort_keys[i].push_back(std::move(v));
      }
    }
    std::vector<size_t> order(rows_.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) {
                       for (size_t k = 0; k < keys_->size(); ++k) {
                         int cmp = sort_keys[a][k].Compare(sort_keys[b][k]);
                         if (cmp != 0) {
                           return (*keys_)[k].ascending ? cmp < 0 : cmp > 0;
                         }
                       }
                       return false;
                     });
    std::vector<std::vector<Value>> sorted;
    sorted.reserve(rows_.size());
    for (size_t i : order) sorted.push_back(std::move(rows_[i]));
    rows_ = std::move(sorted);
    return Status::OK();
  }

  Result<std::optional<Chunk>> Next() override {
    if (emitted_ >= rows_.size()) return std::optional<Chunk>();
    Chunk out = Chunk::Empty(schema_);
    size_t end = std::min(rows_.size(), emitted_ + storage::kDefaultChunkRows);
    for (size_t r = emitted_; r < end; ++r) out.AppendRow(rows_[r]);
    emitted_ = end;
    return std::optional<Chunk>(std::move(out));
  }

 private:
  PhysicalOpPtr child_;
  const std::vector<plan::SortKey>* keys_;
  std::vector<std::vector<Value>> rows_;
  size_t emitted_ = 0;
};

/// Plain remote query (optionally with a relocated local child).
class RemoteQueryOp : public PhysicalOp {
 public:
  RemoteQueryOp(const LogicalOp* logical, ExecContext* ctx,
                PhysicalOpPtr relocated_child)
      : PhysicalOp(logical->schema),
        logical_(logical),
        ctx_(ctx),
        relocated_child_(std::move(relocated_child)) {}

  Status Open() override {
    storage::Table relocated;
    const storage::Table* relocated_ptr = nullptr;
    if (relocated_child_ != nullptr) {
      HANA_RETURN_IF_ERROR(relocated_child_->Open());
      relocated = storage::Table(relocated_child_->schema());
      while (true) {
        HANA_ASSIGN_OR_RETURN(std::optional<Chunk> chunk,
                              relocated_child_->Next());
        if (!chunk.has_value()) break;
        relocated.AppendChunk(std::move(*chunk));
      }
      relocated_ptr = &relocated;
    }
    HANA_ASSIGN_OR_RETURN(stream_,
                          ctx_->OpenRemoteQuery(*logical_, nullptr,
                                                relocated_ptr));
    return Status::OK();
  }

  Result<std::optional<Chunk>> Next() override { return stream_(); }

 private:
  const LogicalOp* logical_;
  ExecContext* ctx_;
  PhysicalOpPtr relocated_child_;
  ChunkStream stream_;
};

/// Semijoin federation strategy: materialize the local (left) side,
/// ship its distinct join keys into the remote query, then hash-join
/// locally with the reduced remote result.
class PushdownJoinOp : public PhysicalOp {
 public:
  PushdownJoinOp(const LogicalOp* join, PhysicalOpPtr left, ExecContext* ctx)
      : PhysicalOp(join->schema),
        join_(join),
        left_(std::move(left)),
        ctx_(ctx) {}

  Status Open() override {
    emitted_ = 0;
    out_rows_.clear();
    HANA_ASSIGN_OR_RETURN(left_rows_, Materialize(left_.get()));
    size_t left_arity = left_->schema()->num_columns();
    plan::JoinConditionParts parts =
        plan::AnalyzeJoinCondition(*join_->condition, left_arity);
    if (parts.equi_keys.empty()) {
      return Status::Internal("semijoin pushdown requires an equi key");
    }
    // Distinct keys of the first equi pair drive the IN-list.
    PushdownInList in_list;
    in_list.column = join_->pushdown_remote_column;
    std::unordered_set<Value, ValueHash> seen;
    for (const auto& row : left_rows_) {
      HANA_ASSIGN_OR_RETURN(Value v,
                            EvalExprRow(*parts.equi_keys[0].left, row));
      if (v.is_null()) continue;
      if (seen.insert(v).second) in_list.values.push_back(v);
    }
    const LogicalOp& rq = *join_->children[1];
    HANA_ASSIGN_OR_RETURN(ChunkStream stream,
                          ctx_->OpenRemoteQuery(rq, &in_list, nullptr));
    // Build a hash table over the (reduced) remote rows.
    std::unordered_multimap<size_t, size_t> table;
    std::vector<std::vector<Value>> remote_rows;
    std::vector<Value> remote_keys;
    while (true) {
      HANA_ASSIGN_OR_RETURN(std::optional<Chunk> chunk, stream());
      if (!chunk.has_value()) break;
      for (size_t r = 0; r < chunk->num_rows(); ++r) {
        std::vector<Value> row = chunk->Row(r);
        HANA_ASSIGN_OR_RETURN(Value k,
                              EvalExprRow(*parts.equi_keys[0].right, row));
        table.emplace(k.Hash(), remote_rows.size());
        remote_keys.push_back(std::move(k));
        remote_rows.push_back(std::move(row));
      }
    }
    // Probe with the local rows.
    for (const auto& left_row : left_rows_) {
      HANA_ASSIGN_OR_RETURN(Value k,
                            EvalExprRow(*parts.equi_keys[0].left, left_row));
      if (k.is_null()) continue;
      auto [lo, hi] = table.equal_range(k.Hash());
      for (auto it = lo; it != hi; ++it) {
        if (remote_keys[it->second].is_null() ||
            k.Compare(remote_keys[it->second]) != 0) {
          continue;
        }
        std::vector<Value> combined = left_row;
        const auto& rrow = remote_rows[it->second];
        combined.insert(combined.end(), rrow.begin(), rrow.end());
        // Remaining equi keys + residual re-checked on the combined row.
        bool keep = true;
        for (size_t e = 1; e < parts.equi_keys.size() && keep; ++e) {
          HANA_ASSIGN_OR_RETURN(Value a, EvalExprRow(*parts.equi_keys[e].left,
                                                     left_row));
          HANA_ASSIGN_OR_RETURN(Value b, EvalExprRow(*parts.equi_keys[e].right,
                                                     rrow));
          keep = !a.is_null() && !b.is_null() && a.Compare(b) == 0;
        }
        if (keep && parts.residual != nullptr) {
          HANA_ASSIGN_OR_RETURN(Value v,
                                EvalExprRow(*parts.residual, combined));
          keep = !v.is_null() && IsTruthy(v);
        }
        if (keep) out_rows_.push_back(std::move(combined));
      }
    }
    return Status::OK();
  }

  Result<std::optional<Chunk>> Next() override {
    if (emitted_ >= out_rows_.size()) return std::optional<Chunk>();
    Chunk out = Chunk::Empty(schema_);
    size_t end =
        std::min(out_rows_.size(), emitted_ + storage::kDefaultChunkRows);
    for (size_t r = emitted_; r < end; ++r) out.AppendRow(out_rows_[r]);
    emitted_ = end;
    return std::optional<Chunk>(std::move(out));
  }

 private:
  const LogicalOp* join_;
  PhysicalOpPtr left_;
  ExecContext* ctx_;
  std::vector<std::vector<Value>> left_rows_;
  std::vector<std::vector<Value>> out_rows_;
  size_t emitted_ = 0;
};

/// Lowers `logical` to a MorselPipelineOp when the host context grants a
/// pool and can decompose the probe scan into morsels; null otherwise.
/// The decision depends only on the plan shape, the policy flags and the
/// scan target — never on the degree of parallelism — so a query runs
/// through the same operator at every thread count. Join pipelines are
/// additionally gated on policy.parallel_join and a usable equi key.
Result<PhysicalOpPtr> TryMorselPipeline(const plan::LogicalOp& logical,
                                        ExecContext* ctx) {
  std::optional<MorselPipeline> p = MatchMorselPipeline(logical);
  if (!p.has_value()) return PhysicalOpPtr();
  ParallelPolicy policy = ctx->parallel_policy();
  if (policy.pool == nullptr) return PhysicalOpPtr();
  if (p->join != nullptr) {
    if (!policy.parallel_join) return PhysicalOpPtr();
    size_t left_arity = p->join->children[0]->schema->num_columns();
    plan::JoinConditionParts parts =
        plan::AnalyzeJoinCondition(*p->join->condition, left_arity);
    if (parts.equi_keys.empty()) return PhysicalOpPtr();
  }
  HANA_ASSIGN_OR_RETURN(
      std::optional<PartitionSource> source,
      ctx->OpenPartitionedScan(*p->scan, policy.morsel_rows));
  if (!source.has_value()) return PhysicalOpPtr();
  if (p->join != nullptr) {
    GlobalJoinExecStats().radix_hash_joins.fetch_add(
        1, std::memory_order_relaxed);
  }
  return PhysicalOpPtr(
      std::make_unique<MorselPipelineOp>(logical.schema, ctx, *p));
}

Result<PhysicalOpPtr> BuildPhysicalImpl(const plan::LogicalOp& logical,
                                        ExecContext* ctx, bool parallel_ok) {
  switch (logical.kind) {
    case LogicalKind::kScan:
      if (parallel_ok) {
        HANA_ASSIGN_OR_RETURN(PhysicalOpPtr op,
                              TryMorselPipeline(logical, ctx));
        if (op != nullptr) return op;
      }
      return PhysicalOpPtr(std::make_unique<StreamOp>(
          logical.schema, [&logical, ctx] { return ctx->OpenScan(logical); }));
    case LogicalKind::kTableFunctionScan:
      return PhysicalOpPtr(std::make_unique<StreamOp>(
          logical.schema,
          [&logical, ctx] { return ctx->OpenTableFunction(logical); }));
    case LogicalKind::kRemoteQuery: {
      PhysicalOpPtr relocated;
      if (logical.relocate_local_child && !logical.children.empty()) {
        HANA_ASSIGN_OR_RETURN(relocated,
                              BuildPhysicalPlan(*logical.children[0], ctx));
      }
      return PhysicalOpPtr(std::make_unique<RemoteQueryOp>(
          &logical, ctx, std::move(relocated)));
    }
    case LogicalKind::kFilter: {
      if (parallel_ok) {
        HANA_ASSIGN_OR_RETURN(PhysicalOpPtr op,
                              TryMorselPipeline(logical, ctx));
        if (op != nullptr) return op;
      }
      HANA_ASSIGN_OR_RETURN(
          PhysicalOpPtr child,
          BuildPhysicalImpl(*logical.children[0], ctx, parallel_ok));
      return PhysicalOpPtr(std::make_unique<FilterOp>(
          std::move(child), logical.predicate.get()));
    }
    case LogicalKind::kProject: {
      if (parallel_ok && !logical.children.empty()) {
        HANA_ASSIGN_OR_RETURN(PhysicalOpPtr op,
                              TryMorselPipeline(logical, ctx));
        if (op != nullptr) return op;
      }
      PhysicalOpPtr child;
      if (!logical.children.empty()) {
        HANA_ASSIGN_OR_RETURN(
            child, BuildPhysicalImpl(*logical.children[0], ctx, parallel_ok));
      }
      return PhysicalOpPtr(std::make_unique<ProjectOp>(
          logical.schema, std::move(child), &logical.exprs));
    }
    case LogicalKind::kJoin: {
      // The join build is blocking but its probe streams lazily, so the
      // eager morsel pipeline is only eligible when not under a LIMIT.
      if (parallel_ok && !logical.semijoin_pushdown) {
        HANA_ASSIGN_OR_RETURN(PhysicalOpPtr op,
                              TryMorselPipeline(logical, ctx));
        if (op != nullptr) return op;
      }
      HANA_ASSIGN_OR_RETURN(
          PhysicalOpPtr left,
          BuildPhysicalImpl(*logical.children[0], ctx, true));
      if (logical.semijoin_pushdown) {
        return PhysicalOpPtr(std::make_unique<PushdownJoinOp>(
            &logical, std::move(left), ctx));
      }
      HANA_ASSIGN_OR_RETURN(
          PhysicalOpPtr right,
          BuildPhysicalImpl(*logical.children[1], ctx, true));
      size_t left_arity = logical.children[0]->schema->num_columns();
      if (logical.condition != nullptr && logical.join_kind != JoinKind::kCross) {
        plan::JoinConditionParts parts =
            plan::AnalyzeJoinCondition(*logical.condition, left_arity);
        if (!parts.equi_keys.empty()) {
          GlobalJoinExecStats().serial_hash_joins.fetch_add(
              1, std::memory_order_relaxed);
          return PhysicalOpPtr(std::make_unique<HashJoinOp>(
              logical.schema, logical.join_kind, std::move(left),
              std::move(right), std::move(parts), logical.build_left));
        }
        // Conditioned join with no usable equi key: silently falling
        // off the hash path is worth noticing — count it and log.
        GlobalJoinExecStats().nested_loop_fallbacks.fetch_add(
            1, std::memory_order_relaxed);
        HANA_LOG(LogLevel::kDebug,
                 "join fell back to nested-loop: no equi key in " +
                     logical.condition->ToString());
      }
      return PhysicalOpPtr(std::make_unique<NestedLoopJoinOp>(
          logical.schema, logical.join_kind, std::move(left), std::move(right),
          logical.condition.get()));
    }
    case LogicalKind::kAggregate: {
      // Aggregation is blocking, so the pipeline is eligible even under
      // a LIMIT.
      HANA_ASSIGN_OR_RETURN(PhysicalOpPtr op, TryMorselPipeline(logical, ctx));
      if (op != nullptr) return op;
      HANA_ASSIGN_OR_RETURN(
          PhysicalOpPtr child,
          BuildPhysicalImpl(*logical.children[0], ctx, true));
      return PhysicalOpPtr(std::make_unique<HashAggregateOp>(
          logical.schema, std::move(child), &logical.group_by,
          &logical.aggregates));
    }
    case LogicalKind::kSort: {
      HANA_ASSIGN_OR_RETURN(
          PhysicalOpPtr child,
          BuildPhysicalImpl(*logical.children[0], ctx, true));
      return PhysicalOpPtr(
          std::make_unique<SortOp>(std::move(child), &logical.sort_keys));
    }
    case LogicalKind::kLimit: {
      HANA_ASSIGN_OR_RETURN(
          PhysicalOpPtr child,
          BuildPhysicalImpl(*logical.children[0], ctx, false));
      return PhysicalOpPtr(
          std::make_unique<LimitOp>(std::move(child), logical.limit));
    }
    case LogicalKind::kUnion: {
      std::vector<PhysicalOpPtr> children;
      for (const auto& c : logical.children) {
        HANA_ASSIGN_OR_RETURN(PhysicalOpPtr child,
                              BuildPhysicalImpl(*c, ctx, parallel_ok));
        children.push_back(std::move(child));
      }
      return PhysicalOpPtr(std::make_unique<UnionOp>(
          logical.schema, std::move(children), ctx));
    }
  }
  return Status::Internal("unknown logical operator");
}

}  // namespace

Result<PhysicalOpPtr> BuildPhysicalPlan(const plan::LogicalOp& logical,
                                        ExecContext* ctx) {
  return BuildPhysicalImpl(logical, ctx, /*parallel_ok=*/true);
}

Result<storage::Table> DrainToTable(PhysicalOp* op) {
  storage::Table table(op->schema());
  HANA_RETURN_IF_ERROR(op->Open());
  while (true) {
    HANA_ASSIGN_OR_RETURN(std::optional<Chunk> chunk, op->Next());
    if (!chunk.has_value()) break;
    table.AppendChunk(std::move(*chunk));
  }
  return table;
}

Result<storage::Table> ExecutePlan(const plan::LogicalOp& logical,
                                   ExecContext* ctx) {
  HANA_ASSIGN_OR_RETURN(PhysicalOpPtr root, BuildPhysicalPlan(logical, ctx));
  return DrainToTable(root.get());
}

}  // namespace hana::exec
