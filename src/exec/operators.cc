#include "exec/operators.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/util.h"
#include "exec/evaluator.h"
#include "exec/executor.h"
#include "exec/pipeline.h"
#include "exec/radix_join.h"
#include "storage/column_table.h"

namespace hana::exec {

namespace {

using plan::BoundExpr;
using plan::JoinKind;
using plan::LogicalKind;
using plan::LogicalOp;
using storage::ValueHash;

bool KeysEqualNonNull(const std::vector<Value>& a,
                      const std::vector<Value>& b) {
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].is_null() || b[i].is_null()) return false;  // SQL join rule.
    if (a[i].Compare(b[i]) != 0) return false;
  }
  return true;
}

/// Wraps a ChunkStream produced by the execution context.
class StreamOp : public PhysicalOp {
 public:
  StreamOp(std::shared_ptr<Schema> schema,
           std::function<Result<ChunkStream>()> opener)
      : PhysicalOp(std::move(schema)), opener_(std::move(opener)) {}

  Status Open() override {
    HANA_ASSIGN_OR_RETURN(stream_, opener_());
    return Status::OK();
  }
  Result<std::optional<Chunk>> Next() override { return stream_(); }

 private:
  std::function<Result<ChunkStream>()> opener_;
  ChunkStream stream_;
};

class FilterOp : public PhysicalOp {
 public:
  FilterOp(PhysicalOpPtr child, const BoundExpr* predicate)
      : PhysicalOp(child->schema()),
        child_(std::move(child)),
        predicate_(predicate) {}

  Status Open() override { return child_->Open(); }

  Result<std::optional<Chunk>> Next() override {
    while (true) {
      HANA_ASSIGN_OR_RETURN(std::optional<Chunk> in, child_->Next());
      if (!in.has_value()) return std::optional<Chunk>();
      Chunk out = Chunk::Empty(schema_);
      for (size_t r = 0; r < in->num_rows(); ++r) {
        HANA_ASSIGN_OR_RETURN(Value keep, EvalExpr(*predicate_, *in, r));
        if (!keep.is_null() && IsTruthy(keep)) {
          for (size_t c = 0; c < out.columns.size(); ++c) {
            out.columns[c]->Append(in->columns[c]->GetValue(r));
          }
        }
      }
      if (out.num_rows() > 0) return std::optional<Chunk>(std::move(out));
      // Empty after filtering: keep pulling.
    }
  }

 private:
  PhysicalOpPtr child_;
  const BoundExpr* predicate_;
};

class ProjectOp : public PhysicalOp {
 public:
  ProjectOp(std::shared_ptr<Schema> schema, PhysicalOpPtr child,
            const std::vector<plan::BoundExprPtr>* exprs)
      : PhysicalOp(std::move(schema)),
        child_(std::move(child)),
        exprs_(exprs) {}

  Status Open() override {
    done_ = false;
    return child_ ? child_->Open() : Status::OK();
  }

  Result<std::optional<Chunk>> Next() override {
    if (child_ == nullptr) {
      // Table-less SELECT: exactly one row of constants.
      if (done_) return std::optional<Chunk>();
      done_ = true;
      Chunk out = Chunk::Empty(schema_);
      static const std::vector<Value> kEmptyRow;
      for (size_t c = 0; c < exprs_->size(); ++c) {
        HANA_ASSIGN_OR_RETURN(Value v, EvalExprRow(*(*exprs_)[c], kEmptyRow));
        out.columns[c]->Append(v);
      }
      return std::optional<Chunk>(std::move(out));
    }
    HANA_ASSIGN_OR_RETURN(std::optional<Chunk> in, child_->Next());
    if (!in.has_value()) return std::optional<Chunk>();
    Chunk out = Chunk::Empty(schema_);
    for (size_t r = 0; r < in->num_rows(); ++r) {
      for (size_t c = 0; c < exprs_->size(); ++c) {
        HANA_ASSIGN_OR_RETURN(Value v, EvalExpr(*(*exprs_)[c], *in, r));
        out.columns[c]->Append(v);
      }
    }
    return std::optional<Chunk>(std::move(out));
  }

 private:
  PhysicalOpPtr child_;
  const std::vector<plan::BoundExprPtr>* exprs_;
  bool done_ = false;
};

class LimitOp : public PhysicalOp {
 public:
  LimitOp(PhysicalOpPtr child, int64_t limit)
      : PhysicalOp(child->schema()), child_(std::move(child)), limit_(limit) {}

  Status Open() override {
    emitted_ = 0;
    return child_->Open();
  }

  Result<std::optional<Chunk>> Next() override {
    if (emitted_ >= limit_) return std::optional<Chunk>();
    HANA_ASSIGN_OR_RETURN(std::optional<Chunk> in, child_->Next());
    if (!in.has_value()) return std::optional<Chunk>();
    int64_t remaining = limit_ - emitted_;
    if (static_cast<int64_t>(in->num_rows()) <= remaining) {
      emitted_ += static_cast<int64_t>(in->num_rows());
      return in;
    }
    Chunk out = Chunk::Empty(schema_);
    for (int64_t r = 0; r < remaining; ++r) {
      for (size_t c = 0; c < out.columns.size(); ++c) {
        out.columns[c]->Append(in->columns[c]->GetValue(static_cast<size_t>(r)));
      }
    }
    emitted_ = limit_;
    return std::optional<Chunk>(std::move(out));
  }

 private:
  PhysicalOpPtr child_;
  int64_t limit_;
  int64_t emitted_ = 0;
};

/// Serial union fallback: the pipeline executor turns a union's
/// branches into independent pipelines, so this operator only runs when
/// the context grants no pool (or the union sits under a LIMIT). It
/// interleaves its children round-robin so one chunk-heavy branch
/// cannot monopolize the stream and LIMIT cutoffs see every branch
/// early.
class UnionOp : public PhysicalOp {
 public:
  UnionOp(std::shared_ptr<Schema> schema, std::vector<PhysicalOpPtr> children)
      : PhysicalOp(std::move(schema)), children_(std::move(children)) {}

  Status Open() override {
    cursor_ = 0;
    remaining_ = children_.size();
    exhausted_.assign(children_.size(), false);
    for (auto& c : children_) HANA_RETURN_IF_ERROR(c->Open());
    return Status::OK();
  }

  Result<std::optional<Chunk>> Next() override {
    while (remaining_ > 0) {
      size_t i = cursor_;
      cursor_ = (cursor_ + 1) % children_.size();
      if (exhausted_[i]) continue;
      HANA_ASSIGN_OR_RETURN(std::optional<Chunk> in, children_[i]->Next());
      if (in.has_value()) {
        // Re-stamp with the union's schema (children may use different
        // qualified names).
        in->schema = schema_;
        return in;
      }
      exhausted_[i] = true;
      --remaining_;
    }
    return std::optional<Chunk>();
  }

 private:
  std::vector<PhysicalOpPtr> children_;
  std::vector<bool> exhausted_;
  size_t cursor_ = 0;
  size_t remaining_ = 0;
};

/// Materializes a child into boxed rows.
Result<std::vector<std::vector<Value>>> Materialize(PhysicalOp* op) {
  std::vector<std::vector<Value>> rows;
  HANA_RETURN_IF_ERROR(op->Open());
  while (true) {
    HANA_ASSIGN_OR_RETURN(std::optional<Chunk> chunk, op->Next());
    if (!chunk.has_value()) break;
    for (size_t r = 0; r < chunk->num_rows(); ++r) {
      rows.push_back(chunk->Row(r));
    }
  }
  return rows;
}

/// `parallel_ok` is false under a LIMIT whose input streams lazily: an
/// eager morsel pipeline there would scan far past the cutoff. Blocking
/// operators (aggregate, sort, join builds) consume their whole input
/// anyway and reset the flag for their subtrees.
Result<PhysicalOpPtr> BuildPhysicalImpl(const plan::LogicalOp& logical,
                                        ExecContext* ctx,
                                        const mvcc::ReadView& view,
                                        bool parallel_ok);

/// Shared probe logic for hash-based joins (serial row-at-a-time path;
/// parallel plans run joins through the pipeline executor's radix join
/// instead). With `build_left` (optimizer-selected, inner joins only)
/// the LEFT child is built and the right child probes; output column
/// order stays left++right either way.
class HashJoinOp : public PhysicalOp {
 public:
  HashJoinOp(std::shared_ptr<Schema> schema, JoinKind kind,
             PhysicalOpPtr left, PhysicalOpPtr right,
             plan::JoinConditionParts parts, bool build_left)
      : PhysicalOp(std::move(schema)),
        kind_(kind),
        left_(std::move(left)),
        right_(std::move(right)),
        parts_(std::move(parts)),
        build_left_(build_left && kind == JoinKind::kInner) {}

  Status Open() override {
    PhysicalOp* probe = build_left_ ? right_.get() : left_.get();
    PhysicalOp* build = build_left_ ? left_.get() : right_.get();
    HANA_RETURN_IF_ERROR(probe->Open());
    HANA_ASSIGN_OR_RETURN(build_rows_, Materialize(build));
    table_.clear();
    build_keys_.clear();
    build_keys_.reserve(build_rows_.size());
    for (size_t i = 0; i < build_rows_.size(); ++i) {
      std::vector<Value> key;
      key.reserve(parts_.equi_keys.size());
      for (const auto& ek : parts_.equi_keys) {
        const BoundExpr& expr = build_left_ ? *ek.left : *ek.right;
        HANA_ASSIGN_OR_RETURN(Value v, EvalExprRow(expr, build_rows_[i]));
        key.push_back(std::move(v));
      }
      table_.emplace(HashKey(key), i);
      build_keys_.push_back(std::move(key));
    }
    // Fixed by the schemas; hoisted out of the per-chunk Next() loop.
    build_width_ = kind_ == JoinKind::kSemi || kind_ == JoinKind::kAnti
                       ? 0
                       : schema_->num_columns() -
                             (build_left_ ? right_ : left_)
                                 ->schema()
                                 ->num_columns();
    return Status::OK();
  }

  Result<std::optional<Chunk>> Next() override {
    PhysicalOp* probe = build_left_ ? right_.get() : left_.get();
    std::vector<Value> key;  // Reused across rows; cleared per row.
    key.reserve(parts_.equi_keys.size());
    while (true) {
      HANA_ASSIGN_OR_RETURN(std::optional<Chunk> in, probe->Next());
      if (!in.has_value()) return std::optional<Chunk>();
      Chunk out = Chunk::Empty(schema_);
      for (size_t r = 0; r < in->num_rows(); ++r) {
        std::vector<Value> probe_row = in->Row(r);
        key.clear();
        bool key_null = false;
        for (const auto& ek : parts_.equi_keys) {
          const BoundExpr& expr = build_left_ ? *ek.right : *ek.left;
          HANA_ASSIGN_OR_RETURN(Value v, EvalExprRow(expr, probe_row));
          if (v.is_null()) key_null = true;
          key.push_back(std::move(v));
        }
        bool matched = false;
        if (!key_null) {
          auto [lo, hi] = table_.equal_range(HashKey(key));
          for (auto it = lo; it != hi; ++it) {
            size_t b = it->second;
            if (!KeysEqualNonNull(key, build_keys_[b])) continue;
            // Residual over the combined row (left++right order).
            std::vector<Value> combined =
                build_left_ ? build_rows_[b] : probe_row;
            const std::vector<Value>& tail =
                build_left_ ? probe_row : build_rows_[b];
            combined.insert(combined.end(), tail.begin(), tail.end());
            if (parts_.residual != nullptr) {
              HANA_ASSIGN_OR_RETURN(Value keep,
                                    EvalExprRow(*parts_.residual, combined));
              if (keep.is_null() || !IsTruthy(keep)) continue;
            }
            matched = true;
            if (kind_ == JoinKind::kInner || kind_ == JoinKind::kLeft) {
              out.AppendRow(combined);
            } else if (kind_ == JoinKind::kSemi) {
              out.AppendRow(probe_row);
              break;
            } else {  // kAnti: first match disqualifies.
              break;
            }
          }
        }
        if (!matched) {
          if (kind_ == JoinKind::kAnti) {
            out.AppendRow(probe_row);
          } else if (kind_ == JoinKind::kLeft) {
            std::vector<Value> combined = probe_row;
            combined.resize(probe_row.size() + build_width_, Value::Null());
            out.AppendRow(combined);
          }
        }
      }
      if (out.num_rows() > 0) return std::optional<Chunk>(std::move(out));
    }
  }

 private:
  JoinKind kind_;
  PhysicalOpPtr left_;
  PhysicalOpPtr right_;
  plan::JoinConditionParts parts_;
  bool build_left_;
  size_t build_width_ = 0;  // Build-side column count in the output.
  std::vector<std::vector<Value>> build_rows_;
  std::vector<std::vector<Value>> build_keys_;
  std::unordered_multimap<size_t, size_t> table_;
};

class NestedLoopJoinOp : public PhysicalOp {
 public:
  NestedLoopJoinOp(std::shared_ptr<Schema> schema, JoinKind kind,
                   PhysicalOpPtr left, PhysicalOpPtr right,
                   const BoundExpr* condition)
      : PhysicalOp(std::move(schema)),
        kind_(kind),
        left_(std::move(left)),
        right_(std::move(right)),
        condition_(condition) {}

  Status Open() override {
    HANA_RETURN_IF_ERROR(left_->Open());
    HANA_ASSIGN_OR_RETURN(build_rows_, Materialize(right_.get()));
    return Status::OK();
  }

  Result<std::optional<Chunk>> Next() override {
    size_t right_width = kind_ == JoinKind::kSemi || kind_ == JoinKind::kAnti
                             ? 0
                             : schema_->num_columns() -
                                   left_->schema()->num_columns();
    while (true) {
      HANA_ASSIGN_OR_RETURN(std::optional<Chunk> in, left_->Next());
      if (!in.has_value()) return std::optional<Chunk>();
      Chunk out = Chunk::Empty(schema_);
      for (size_t r = 0; r < in->num_rows(); ++r) {
        std::vector<Value> left_row = in->Row(r);
        bool matched = false;
        for (const auto& build : build_rows_) {
          std::vector<Value> combined = left_row;
          combined.insert(combined.end(), build.begin(), build.end());
          if (condition_ != nullptr) {
            HANA_ASSIGN_OR_RETURN(Value keep,
                                  EvalExprRow(*condition_, combined));
            if (keep.is_null() || !IsTruthy(keep)) continue;
          }
          matched = true;
          if (kind_ == JoinKind::kInner || kind_ == JoinKind::kLeft ||
              kind_ == JoinKind::kCross) {
            out.AppendRow(combined);
          } else {
            break;  // Semi/anti need only existence.
          }
        }
        if (kind_ == JoinKind::kSemi && matched) out.AppendRow(left_row);
        if (kind_ == JoinKind::kAnti && !matched) out.AppendRow(left_row);
        if (kind_ == JoinKind::kLeft && !matched) {
          std::vector<Value> combined = left_row;
          combined.resize(left_row.size() + right_width, Value::Null());
          out.AppendRow(combined);
        }
      }
      if (out.num_rows() > 0) return std::optional<Chunk>(std::move(out));
    }
  }

 private:
  JoinKind kind_;
  PhysicalOpPtr left_;
  PhysicalOpPtr right_;
  const BoundExpr* condition_;
  std::vector<std::vector<Value>> build_rows_;
};

class HashAggregateOp : public PhysicalOp {
 public:
  HashAggregateOp(std::shared_ptr<Schema> schema, PhysicalOpPtr child,
                  const std::vector<plan::BoundExprPtr>* group_by,
                  const std::vector<plan::BoundExprPtr>* aggregates)
      : PhysicalOp(std::move(schema)),
        child_(std::move(child)),
        group_by_(group_by),
        aggregates_(aggregates) {}

  Status Open() override {
    // Single-partition table: the serial operator rides the same
    // vectorized column-wise accumulate as the pipeline executor's
    // morsel partials, so serial and parallel results are bit-identical
    // by construction.
    table_ = std::make_unique<PartitionedGroupTable>(group_by_, aggregates_,
                                                     /*partitions=*/1);
    table_->BeginMorsel(0);
    emitted_ = 0;
    HANA_RETURN_IF_ERROR(child_->Open());
    while (true) {
      HANA_ASSIGN_OR_RETURN(std::optional<Chunk> in, child_->Next());
      if (!in.has_value()) break;
      HANA_RETURN_IF_ERROR(table_->AccumulateChunk(*in));
    }
    table_->EnsureGlobalGroup();
    return Status::OK();
  }

  Result<std::optional<Chunk>> Next() override {
    const GroupTable& t = table_->partition(0);
    if (emitted_ >= t.num_groups()) return std::optional<Chunk>();
    Chunk out = Chunk::Empty(schema_);
    size_t end =
        std::min(t.num_groups(), emitted_ + storage::kDefaultChunkRows);
    for (size_t g = emitted_; g < end; ++g) out.AppendRow(t.EmitRow(g));
    emitted_ = end;
    return std::optional<Chunk>(std::move(out));
  }

 private:
  PhysicalOpPtr child_;
  const std::vector<plan::BoundExprPtr>* group_by_;
  const std::vector<plan::BoundExprPtr>* aggregates_;
  std::unique_ptr<PartitionedGroupTable> table_;
  size_t emitted_ = 0;
};

class SortOp : public PhysicalOp {
 public:
  SortOp(PhysicalOpPtr child, const std::vector<plan::SortKey>* keys)
      : PhysicalOp(child->schema()), child_(std::move(child)), keys_(keys) {}

  Status Open() override {
    emitted_ = 0;
    HANA_ASSIGN_OR_RETURN(rows_, Materialize(child_.get()));
    std::vector<std::vector<Value>> sort_keys(rows_.size());
    for (size_t i = 0; i < rows_.size(); ++i) {
      for (const auto& k : *keys_) {
        HANA_ASSIGN_OR_RETURN(Value v, EvalExprRow(*k.expr, rows_[i]));
        sort_keys[i].push_back(std::move(v));
      }
    }
    std::vector<size_t> order(rows_.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) {
                       for (size_t k = 0; k < keys_->size(); ++k) {
                         int cmp = sort_keys[a][k].Compare(sort_keys[b][k]);
                         if (cmp != 0) {
                           return (*keys_)[k].ascending ? cmp < 0 : cmp > 0;
                         }
                       }
                       return false;
                     });
    std::vector<std::vector<Value>> sorted;
    sorted.reserve(rows_.size());
    for (size_t i : order) sorted.push_back(std::move(rows_[i]));
    rows_ = std::move(sorted);
    return Status::OK();
  }

  Result<std::optional<Chunk>> Next() override {
    if (emitted_ >= rows_.size()) return std::optional<Chunk>();
    Chunk out = Chunk::Empty(schema_);
    size_t end = std::min(rows_.size(), emitted_ + storage::kDefaultChunkRows);
    for (size_t r = emitted_; r < end; ++r) out.AppendRow(rows_[r]);
    emitted_ = end;
    return std::optional<Chunk>(std::move(out));
  }

 private:
  PhysicalOpPtr child_;
  const std::vector<plan::SortKey>* keys_;
  std::vector<std::vector<Value>> rows_;
  size_t emitted_ = 0;
};

/// Plain remote query (optionally with a relocated local child).
class RemoteQueryOp : public PhysicalOp {
 public:
  RemoteQueryOp(const LogicalOp* logical, ExecContext* ctx,
                PhysicalOpPtr relocated_child)
      : PhysicalOp(logical->schema),
        logical_(logical),
        ctx_(ctx),
        relocated_child_(std::move(relocated_child)) {}

  Status Open() override {
    storage::Table relocated;
    const storage::Table* relocated_ptr = nullptr;
    if (relocated_child_ != nullptr) {
      HANA_RETURN_IF_ERROR(relocated_child_->Open());
      relocated = storage::Table(relocated_child_->schema());
      while (true) {
        HANA_ASSIGN_OR_RETURN(std::optional<Chunk> chunk,
                              relocated_child_->Next());
        if (!chunk.has_value()) break;
        relocated.AppendChunk(std::move(*chunk));
      }
      relocated_ptr = &relocated;
    }
    HANA_ASSIGN_OR_RETURN(stream_,
                          ctx_->OpenRemoteQuery(*logical_, nullptr,
                                                relocated_ptr));
    return Status::OK();
  }

  Result<std::optional<Chunk>> Next() override { return stream_(); }

 private:
  const LogicalOp* logical_;
  ExecContext* ctx_;
  PhysicalOpPtr relocated_child_;
  ChunkStream stream_;
};

/// Semijoin federation strategy: materialize the local (left) side,
/// ship its distinct join keys into the remote query, then hash-join
/// locally with the reduced remote result.
class PushdownJoinOp : public PhysicalOp {
 public:
  PushdownJoinOp(const LogicalOp* join, PhysicalOpPtr left, ExecContext* ctx)
      : PhysicalOp(join->schema),
        join_(join),
        left_(std::move(left)),
        ctx_(ctx) {}

  Status Open() override {
    emitted_ = 0;
    out_rows_.clear();
    HANA_ASSIGN_OR_RETURN(left_rows_, Materialize(left_.get()));
    size_t left_arity = left_->schema()->num_columns();
    plan::JoinConditionParts parts =
        plan::AnalyzeJoinCondition(*join_->condition, left_arity);
    if (parts.equi_keys.empty()) {
      return Status::Internal("semijoin pushdown requires an equi key");
    }
    // Distinct keys of the first equi pair drive the IN-list.
    PushdownInList in_list;
    in_list.column = join_->pushdown_remote_column;
    std::unordered_set<Value, ValueHash> seen;
    for (const auto& row : left_rows_) {
      HANA_ASSIGN_OR_RETURN(Value v,
                            EvalExprRow(*parts.equi_keys[0].left, row));
      if (v.is_null()) continue;
      if (seen.insert(v).second) in_list.values.push_back(v);
    }
    const LogicalOp& rq = *join_->children[1];
    HANA_ASSIGN_OR_RETURN(ChunkStream stream,
                          ctx_->OpenRemoteQuery(rq, &in_list, nullptr));
    // Build a hash table over the (reduced) remote rows.
    std::unordered_multimap<size_t, size_t> table;
    std::vector<std::vector<Value>> remote_rows;
    std::vector<Value> remote_keys;
    while (true) {
      HANA_ASSIGN_OR_RETURN(std::optional<Chunk> chunk, stream());
      if (!chunk.has_value()) break;
      for (size_t r = 0; r < chunk->num_rows(); ++r) {
        std::vector<Value> row = chunk->Row(r);
        HANA_ASSIGN_OR_RETURN(Value k,
                              EvalExprRow(*parts.equi_keys[0].right, row));
        table.emplace(k.Hash(), remote_rows.size());
        remote_keys.push_back(std::move(k));
        remote_rows.push_back(std::move(row));
      }
    }
    // Probe with the local rows.
    for (const auto& left_row : left_rows_) {
      HANA_ASSIGN_OR_RETURN(Value k,
                            EvalExprRow(*parts.equi_keys[0].left, left_row));
      if (k.is_null()) continue;
      auto [lo, hi] = table.equal_range(k.Hash());
      for (auto it = lo; it != hi; ++it) {
        if (remote_keys[it->second].is_null() ||
            k.Compare(remote_keys[it->second]) != 0) {
          continue;
        }
        std::vector<Value> combined = left_row;
        const auto& rrow = remote_rows[it->second];
        combined.insert(combined.end(), rrow.begin(), rrow.end());
        // Remaining equi keys + residual re-checked on the combined row.
        bool keep = true;
        for (size_t e = 1; e < parts.equi_keys.size() && keep; ++e) {
          HANA_ASSIGN_OR_RETURN(Value a, EvalExprRow(*parts.equi_keys[e].left,
                                                     left_row));
          HANA_ASSIGN_OR_RETURN(Value b, EvalExprRow(*parts.equi_keys[e].right,
                                                     rrow));
          keep = !a.is_null() && !b.is_null() && a.Compare(b) == 0;
        }
        if (keep && parts.residual != nullptr) {
          HANA_ASSIGN_OR_RETURN(Value v,
                                EvalExprRow(*parts.residual, combined));
          keep = !v.is_null() && IsTruthy(v);
        }
        if (keep) out_rows_.push_back(std::move(combined));
      }
    }
    return Status::OK();
  }

  Result<std::optional<Chunk>> Next() override {
    if (emitted_ >= out_rows_.size()) return std::optional<Chunk>();
    Chunk out = Chunk::Empty(schema_);
    size_t end =
        std::min(out_rows_.size(), emitted_ + storage::kDefaultChunkRows);
    for (size_t r = emitted_; r < end; ++r) out.AppendRow(out_rows_[r]);
    emitted_ = end;
    return std::optional<Chunk>(std::move(out));
  }

 private:
  const LogicalOp* join_;
  PhysicalOpPtr left_;
  ExecContext* ctx_;
  std::vector<std::vector<Value>> left_rows_;
  std::vector<std::vector<Value>> out_rows_;
  size_t emitted_ = 0;
};

Result<PhysicalOpPtr> BuildPhysicalImpl(const plan::LogicalOp& logical,
                                        ExecContext* ctx,
                                        const mvcc::ReadView& view,
                                        bool parallel_ok) {
  switch (logical.kind) {
    case LogicalKind::kScan:
      if (parallel_ok) {
        HANA_ASSIGN_OR_RETURN(PhysicalOpPtr op,
                              TrySubPipeline(logical, ctx, view));
        if (op != nullptr) return op;
      }
      return PhysicalOpPtr(std::make_unique<StreamOp>(
          logical.schema,
          [&logical, ctx, view] { return ctx->OpenScanAt(logical, view); }));
    case LogicalKind::kTableFunctionScan:
      return PhysicalOpPtr(std::make_unique<StreamOp>(
          logical.schema,
          [&logical, ctx] { return ctx->OpenTableFunction(logical); }));
    case LogicalKind::kRemoteQuery: {
      PhysicalOpPtr relocated;
      if (logical.relocate_local_child && !logical.children.empty()) {
        HANA_ASSIGN_OR_RETURN(
            relocated, BuildPhysicalPlan(*logical.children[0], ctx, view));
      }
      return PhysicalOpPtr(std::make_unique<RemoteQueryOp>(
          &logical, ctx, std::move(relocated)));
    }
    case LogicalKind::kFilter: {
      if (parallel_ok) {
        HANA_ASSIGN_OR_RETURN(PhysicalOpPtr op,
                              TrySubPipeline(logical, ctx, view));
        if (op != nullptr) return op;
      }
      HANA_ASSIGN_OR_RETURN(
          PhysicalOpPtr child,
          BuildPhysicalImpl(*logical.children[0], ctx, view, parallel_ok));
      return PhysicalOpPtr(std::make_unique<FilterOp>(
          std::move(child), logical.predicate.get()));
    }
    case LogicalKind::kProject: {
      if (parallel_ok && !logical.children.empty()) {
        HANA_ASSIGN_OR_RETURN(PhysicalOpPtr op,
                              TrySubPipeline(logical, ctx, view));
        if (op != nullptr) return op;
      }
      PhysicalOpPtr child;
      if (!logical.children.empty()) {
        HANA_ASSIGN_OR_RETURN(
            child,
            BuildPhysicalImpl(*logical.children[0], ctx, view, parallel_ok));
      }
      return PhysicalOpPtr(std::make_unique<ProjectOp>(
          logical.schema, std::move(child), &logical.exprs));
    }
    case LogicalKind::kJoin: {
      // The join build is blocking but its probe streams lazily, so the
      // eager pipeline executor is only eligible when not under a LIMIT.
      if (parallel_ok && !logical.semijoin_pushdown) {
        HANA_ASSIGN_OR_RETURN(PhysicalOpPtr op,
                              TrySubPipeline(logical, ctx, view));
        if (op != nullptr) return op;
      }
      HANA_ASSIGN_OR_RETURN(
          PhysicalOpPtr left,
          BuildPhysicalImpl(*logical.children[0], ctx, view, true));
      if (logical.semijoin_pushdown) {
        return PhysicalOpPtr(std::make_unique<PushdownJoinOp>(
            &logical, std::move(left), ctx));
      }
      HANA_ASSIGN_OR_RETURN(
          PhysicalOpPtr right,
          BuildPhysicalImpl(*logical.children[1], ctx, view, true));
      size_t left_arity = logical.children[0]->schema->num_columns();
      if (logical.condition != nullptr && logical.join_kind != JoinKind::kCross) {
        plan::JoinConditionParts parts =
            plan::AnalyzeJoinCondition(*logical.condition, left_arity);
        if (!parts.equi_keys.empty()) {
          GlobalJoinExecStats().serial_hash_joins.fetch_add(
              1, std::memory_order_relaxed);
          return PhysicalOpPtr(std::make_unique<HashJoinOp>(
              logical.schema, logical.join_kind, std::move(left),
              std::move(right), std::move(parts), logical.build_left));
        }
        // Conditioned join with no usable equi key: silently falling
        // off the hash path is worth noticing — count it and log.
        GlobalJoinExecStats().nested_loop_fallbacks.fetch_add(
            1, std::memory_order_relaxed);
        HANA_LOG(LogLevel::kDebug,
                 "join fell back to nested-loop: no equi key in " +
                     logical.condition->ToString());
      }
      return PhysicalOpPtr(std::make_unique<NestedLoopJoinOp>(
          logical.schema, logical.join_kind, std::move(left), std::move(right),
          logical.condition.get()));
    }
    case LogicalKind::kAggregate: {
      // Aggregation is blocking, so the pipeline is eligible even under
      // a LIMIT.
      HANA_ASSIGN_OR_RETURN(PhysicalOpPtr op,
                            TrySubPipeline(logical, ctx, view));
      if (op != nullptr) return op;
      HANA_ASSIGN_OR_RETURN(
          PhysicalOpPtr child,
          BuildPhysicalImpl(*logical.children[0], ctx, view, true));
      return PhysicalOpPtr(std::make_unique<HashAggregateOp>(
          logical.schema, std::move(child), &logical.group_by,
          &logical.aggregates));
    }
    case LogicalKind::kSort: {
      HANA_ASSIGN_OR_RETURN(
          PhysicalOpPtr child,
          BuildPhysicalImpl(*logical.children[0], ctx, view, true));
      return PhysicalOpPtr(
          std::make_unique<SortOp>(std::move(child), &logical.sort_keys));
    }
    case LogicalKind::kLimit: {
      HANA_ASSIGN_OR_RETURN(
          PhysicalOpPtr child,
          BuildPhysicalImpl(*logical.children[0], ctx, view, false));
      return PhysicalOpPtr(
          std::make_unique<LimitOp>(std::move(child), logical.limit));
    }
    case LogicalKind::kUnion: {
      std::vector<PhysicalOpPtr> children;
      for (const auto& c : logical.children) {
        HANA_ASSIGN_OR_RETURN(PhysicalOpPtr child,
                              BuildPhysicalImpl(*c, ctx, view, parallel_ok));
        children.push_back(std::move(child));
      }
      return PhysicalOpPtr(std::make_unique<UnionOp>(
          logical.schema, std::move(children)));
    }
  }
  return Status::Internal("unknown logical operator");
}

}  // namespace

Result<PhysicalOpPtr> BuildPhysicalPlan(const plan::LogicalOp& logical,
                                        ExecContext* ctx) {
  return BuildPhysicalImpl(logical, ctx, mvcc::ReadView{},
                           /*parallel_ok=*/true);
}

Result<PhysicalOpPtr> BuildPhysicalPlan(const plan::LogicalOp& logical,
                                        ExecContext* ctx,
                                        const mvcc::ReadView& view) {
  return BuildPhysicalImpl(logical, ctx, view, /*parallel_ok=*/true);
}

Result<storage::Table> DrainToTable(PhysicalOp* op) {
  storage::Table table(op->schema());
  HANA_RETURN_IF_ERROR(op->Open());
  while (true) {
    HANA_ASSIGN_OR_RETURN(std::optional<Chunk> chunk, op->Next());
    if (!chunk.has_value()) break;
    table.AppendChunk(std::move(*chunk));
  }
  return table;
}

}  // namespace hana::exec
