#include "exec/operators.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/util.h"
#include "exec/evaluator.h"
#include "storage/column_table.h"

namespace hana::exec {

namespace {

using plan::BoundExpr;
using plan::JoinKind;
using plan::LogicalKind;
using plan::LogicalOp;
using storage::ValueHash;

size_t HashKey(const std::vector<Value>& key) {
  size_t h = 0x12345;
  for (const Value& v : key) h = HashCombine(h, v.Hash());
  return h;
}

bool KeysEqualNonNull(const std::vector<Value>& a,
                      const std::vector<Value>& b) {
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].is_null() || b[i].is_null()) return false;  // SQL join rule.
    if (a[i].Compare(b[i]) != 0) return false;
  }
  return true;
}

/// Wraps a ChunkStream produced by the execution context.
class StreamOp : public PhysicalOp {
 public:
  StreamOp(std::shared_ptr<Schema> schema,
           std::function<Result<ChunkStream>()> opener)
      : PhysicalOp(std::move(schema)), opener_(std::move(opener)) {}

  Status Open() override {
    HANA_ASSIGN_OR_RETURN(stream_, opener_());
    return Status::OK();
  }
  Result<std::optional<Chunk>> Next() override { return stream_(); }

 private:
  std::function<Result<ChunkStream>()> opener_;
  ChunkStream stream_;
};

class FilterOp : public PhysicalOp {
 public:
  FilterOp(PhysicalOpPtr child, const BoundExpr* predicate)
      : PhysicalOp(child->schema()),
        child_(std::move(child)),
        predicate_(predicate) {}

  Status Open() override { return child_->Open(); }

  Result<std::optional<Chunk>> Next() override {
    while (true) {
      HANA_ASSIGN_OR_RETURN(std::optional<Chunk> in, child_->Next());
      if (!in.has_value()) return std::optional<Chunk>();
      Chunk out = Chunk::Empty(schema_);
      for (size_t r = 0; r < in->num_rows(); ++r) {
        HANA_ASSIGN_OR_RETURN(Value keep, EvalExpr(*predicate_, *in, r));
        if (!keep.is_null() && IsTruthy(keep)) {
          for (size_t c = 0; c < out.columns.size(); ++c) {
            out.columns[c]->Append(in->columns[c]->GetValue(r));
          }
        }
      }
      if (out.num_rows() > 0) return std::optional<Chunk>(std::move(out));
      // Empty after filtering: keep pulling.
    }
  }

 private:
  PhysicalOpPtr child_;
  const BoundExpr* predicate_;
};

class ProjectOp : public PhysicalOp {
 public:
  ProjectOp(std::shared_ptr<Schema> schema, PhysicalOpPtr child,
            const std::vector<plan::BoundExprPtr>* exprs)
      : PhysicalOp(std::move(schema)),
        child_(std::move(child)),
        exprs_(exprs) {}

  Status Open() override {
    done_ = false;
    return child_ ? child_->Open() : Status::OK();
  }

  Result<std::optional<Chunk>> Next() override {
    if (child_ == nullptr) {
      // Table-less SELECT: exactly one row of constants.
      if (done_) return std::optional<Chunk>();
      done_ = true;
      Chunk out = Chunk::Empty(schema_);
      static const std::vector<Value> kEmptyRow;
      for (size_t c = 0; c < exprs_->size(); ++c) {
        HANA_ASSIGN_OR_RETURN(Value v, EvalExprRow(*(*exprs_)[c], kEmptyRow));
        out.columns[c]->Append(v);
      }
      return std::optional<Chunk>(std::move(out));
    }
    HANA_ASSIGN_OR_RETURN(std::optional<Chunk> in, child_->Next());
    if (!in.has_value()) return std::optional<Chunk>();
    Chunk out = Chunk::Empty(schema_);
    for (size_t r = 0; r < in->num_rows(); ++r) {
      for (size_t c = 0; c < exprs_->size(); ++c) {
        HANA_ASSIGN_OR_RETURN(Value v, EvalExpr(*(*exprs_)[c], *in, r));
        out.columns[c]->Append(v);
      }
    }
    return std::optional<Chunk>(std::move(out));
  }

 private:
  PhysicalOpPtr child_;
  const std::vector<plan::BoundExprPtr>* exprs_;
  bool done_ = false;
};

class LimitOp : public PhysicalOp {
 public:
  LimitOp(PhysicalOpPtr child, int64_t limit)
      : PhysicalOp(child->schema()), child_(std::move(child)), limit_(limit) {}

  Status Open() override {
    emitted_ = 0;
    return child_->Open();
  }

  Result<std::optional<Chunk>> Next() override {
    if (emitted_ >= limit_) return std::optional<Chunk>();
    HANA_ASSIGN_OR_RETURN(std::optional<Chunk> in, child_->Next());
    if (!in.has_value()) return std::optional<Chunk>();
    int64_t remaining = limit_ - emitted_;
    if (static_cast<int64_t>(in->num_rows()) <= remaining) {
      emitted_ += static_cast<int64_t>(in->num_rows());
      return in;
    }
    Chunk out = Chunk::Empty(schema_);
    for (int64_t r = 0; r < remaining; ++r) {
      for (size_t c = 0; c < out.columns.size(); ++c) {
        out.columns[c]->Append(in->columns[c]->GetValue(static_cast<size_t>(r)));
      }
    }
    emitted_ = limit_;
    return std::optional<Chunk>(std::move(out));
  }

 private:
  PhysicalOpPtr child_;
  int64_t limit_;
  int64_t emitted_ = 0;
};

/// RAII bracket for concurrent federation dispatch (exception-safe).
struct DispatchRegion {
  explicit DispatchRegion(ExecContext* c) : ctx(c) {
    ctx->BeginConcurrentRemoteDispatch();
  }
  ~DispatchRegion() { ctx->EndConcurrentRemoteDispatch(); }
  ExecContext* ctx;
};

class UnionOp : public PhysicalOp {
 public:
  UnionOp(std::shared_ptr<Schema> schema, std::vector<PhysicalOpPtr> children,
          ExecContext* ctx)
      : PhysicalOp(std::move(schema)),
        children_(std::move(children)),
        ctx_(ctx) {}

  Status Open() override {
    current_ = 0;
    ParallelPolicy policy = ctx_->parallel_policy();
    if (policy.pool != nullptr && policy.dop > 1 && children_.size() > 1) {
      // Union Plan execution (Section 5): open every branch at once so
      // remote latencies overlap — the SDA runtime charges virtual time
      // as max over branches instead of their sum.
      std::vector<Status> statuses(children_.size());
      DispatchRegion region(ctx_);
      policy.pool->ParallelFor(
          children_.size(),
          [&](size_t i) { statuses[i] = children_[i]->Open(); }, policy.dop);
      for (Status& s : statuses) HANA_RETURN_IF_ERROR(s);
      return Status::OK();
    }
    for (auto& c : children_) HANA_RETURN_IF_ERROR(c->Open());
    return Status::OK();
  }

  Result<std::optional<Chunk>> Next() override {
    while (current_ < children_.size()) {
      HANA_ASSIGN_OR_RETURN(std::optional<Chunk> in,
                            children_[current_]->Next());
      if (in.has_value()) {
        // Re-stamp with the union's schema (children may use different
        // qualified names).
        in->schema = schema_;
        return in;
      }
      ++current_;
    }
    return std::optional<Chunk>();
  }

 private:
  std::vector<PhysicalOpPtr> children_;
  ExecContext* ctx_;
  size_t current_ = 0;
};

/// Materializes a child into boxed rows.
Result<std::vector<std::vector<Value>>> Materialize(PhysicalOp* op) {
  std::vector<std::vector<Value>> rows;
  HANA_RETURN_IF_ERROR(op->Open());
  while (true) {
    HANA_ASSIGN_OR_RETURN(std::optional<Chunk> chunk, op->Next());
    if (!chunk.has_value()) break;
    for (size_t r = 0; r < chunk->num_rows(); ++r) {
      rows.push_back(chunk->Row(r));
    }
  }
  return rows;
}

/// Shared probe logic for hash-based joins.
class HashJoinOp : public PhysicalOp {
 public:
  HashJoinOp(std::shared_ptr<Schema> schema, JoinKind kind,
             PhysicalOpPtr left, PhysicalOpPtr right,
             plan::JoinConditionParts parts)
      : PhysicalOp(std::move(schema)),
        kind_(kind),
        left_(std::move(left)),
        right_(std::move(right)),
        parts_(std::move(parts)) {}

  Status Open() override {
    HANA_RETURN_IF_ERROR(left_->Open());
    HANA_ASSIGN_OR_RETURN(build_rows_, Materialize(right_.get()));
    table_.clear();
    build_keys_.clear();
    build_keys_.reserve(build_rows_.size());
    for (size_t i = 0; i < build_rows_.size(); ++i) {
      std::vector<Value> key;
      key.reserve(parts_.equi_keys.size());
      for (const auto& ek : parts_.equi_keys) {
        HANA_ASSIGN_OR_RETURN(Value v, EvalExprRow(*ek.right, build_rows_[i]));
        key.push_back(std::move(v));
      }
      table_.emplace(HashKey(key), i);
      build_keys_.push_back(std::move(key));
    }
    return Status::OK();
  }

  Result<std::optional<Chunk>> Next() override {
    size_t right_width = kind_ == JoinKind::kSemi || kind_ == JoinKind::kAnti
                             ? 0
                             : schema_->num_columns() -
                                   (left_->schema()->num_columns());
    while (true) {
      HANA_ASSIGN_OR_RETURN(std::optional<Chunk> in, left_->Next());
      if (!in.has_value()) return std::optional<Chunk>();
      Chunk out = Chunk::Empty(schema_);
      for (size_t r = 0; r < in->num_rows(); ++r) {
        std::vector<Value> left_row = in->Row(r);
        std::vector<Value> key;
        key.reserve(parts_.equi_keys.size());
        bool key_null = false;
        for (const auto& ek : parts_.equi_keys) {
          HANA_ASSIGN_OR_RETURN(Value v, EvalExprRow(*ek.left, left_row));
          if (v.is_null()) key_null = true;
          key.push_back(std::move(v));
        }
        bool matched = false;
        if (!key_null) {
          auto [lo, hi] = table_.equal_range(HashKey(key));
          for (auto it = lo; it != hi; ++it) {
            size_t b = it->second;
            if (!KeysEqualNonNull(key, build_keys_[b])) continue;
            // Residual over the combined row.
            std::vector<Value> combined = left_row;
            combined.insert(combined.end(), build_rows_[b].begin(),
                            build_rows_[b].end());
            if (parts_.residual != nullptr) {
              HANA_ASSIGN_OR_RETURN(Value keep,
                                    EvalExprRow(*parts_.residual, combined));
              if (keep.is_null() || !IsTruthy(keep)) continue;
            }
            matched = true;
            if (kind_ == JoinKind::kInner || kind_ == JoinKind::kLeft) {
              out.AppendRow(combined);
            } else if (kind_ == JoinKind::kSemi) {
              out.AppendRow(left_row);
              break;
            } else {  // kAnti: first match disqualifies.
              break;
            }
          }
        }
        if (!matched) {
          if (kind_ == JoinKind::kAnti) {
            out.AppendRow(left_row);
          } else if (kind_ == JoinKind::kLeft) {
            std::vector<Value> combined = left_row;
            combined.resize(left_row.size() + right_width, Value::Null());
            out.AppendRow(combined);
          }
        }
      }
      if (out.num_rows() > 0) return std::optional<Chunk>(std::move(out));
    }
  }

 private:
  JoinKind kind_;
  PhysicalOpPtr left_;
  PhysicalOpPtr right_;
  plan::JoinConditionParts parts_;
  std::vector<std::vector<Value>> build_rows_;
  std::vector<std::vector<Value>> build_keys_;
  std::unordered_multimap<size_t, size_t> table_;
};

class NestedLoopJoinOp : public PhysicalOp {
 public:
  NestedLoopJoinOp(std::shared_ptr<Schema> schema, JoinKind kind,
                   PhysicalOpPtr left, PhysicalOpPtr right,
                   const BoundExpr* condition)
      : PhysicalOp(std::move(schema)),
        kind_(kind),
        left_(std::move(left)),
        right_(std::move(right)),
        condition_(condition) {}

  Status Open() override {
    HANA_RETURN_IF_ERROR(left_->Open());
    HANA_ASSIGN_OR_RETURN(build_rows_, Materialize(right_.get()));
    return Status::OK();
  }

  Result<std::optional<Chunk>> Next() override {
    size_t right_width = kind_ == JoinKind::kSemi || kind_ == JoinKind::kAnti
                             ? 0
                             : schema_->num_columns() -
                                   left_->schema()->num_columns();
    while (true) {
      HANA_ASSIGN_OR_RETURN(std::optional<Chunk> in, left_->Next());
      if (!in.has_value()) return std::optional<Chunk>();
      Chunk out = Chunk::Empty(schema_);
      for (size_t r = 0; r < in->num_rows(); ++r) {
        std::vector<Value> left_row = in->Row(r);
        bool matched = false;
        for (const auto& build : build_rows_) {
          std::vector<Value> combined = left_row;
          combined.insert(combined.end(), build.begin(), build.end());
          if (condition_ != nullptr) {
            HANA_ASSIGN_OR_RETURN(Value keep,
                                  EvalExprRow(*condition_, combined));
            if (keep.is_null() || !IsTruthy(keep)) continue;
          }
          matched = true;
          if (kind_ == JoinKind::kInner || kind_ == JoinKind::kLeft ||
              kind_ == JoinKind::kCross) {
            out.AppendRow(combined);
          } else {
            break;  // Semi/anti need only existence.
          }
        }
        if (kind_ == JoinKind::kSemi && matched) out.AppendRow(left_row);
        if (kind_ == JoinKind::kAnti && !matched) out.AppendRow(left_row);
        if (kind_ == JoinKind::kLeft && !matched) {
          std::vector<Value> combined = left_row;
          combined.resize(left_row.size() + right_width, Value::Null());
          out.AppendRow(combined);
        }
      }
      if (out.num_rows() > 0) return std::optional<Chunk>(std::move(out));
    }
  }

 private:
  JoinKind kind_;
  PhysicalOpPtr left_;
  PhysicalOpPtr right_;
  const BoundExpr* condition_;
  std::vector<std::vector<Value>> build_rows_;
};

/// Aggregation state for one (group, aggregate) pair.
struct AggState {
  int64_t count = 0;
  double sum_d = 0.0;
  int64_t sum_i = 0;
  bool any = false;
  Value min_v;
  Value max_v;
  std::unique_ptr<std::unordered_set<Value, ValueHash>> distinct;
};

Value FinalizeAgg(const BoundExpr* agg, const AggState& st) {
  switch (agg->agg_kind) {
    case plan::AggKind::kCountStar:
    case plan::AggKind::kCount:
      return Value::Int(st.count);
    case plan::AggKind::kSum:
      if (!st.any) return Value::Null();
      return agg->type == DataType::kDouble ? Value::Double(st.sum_d)
                                            : Value::Int(st.sum_i);
    case plan::AggKind::kAvg:
      if (!st.any || st.count == 0) return Value::Null();
      return Value::Double(st.sum_d / static_cast<double>(st.count));
    case plan::AggKind::kMin:
      return st.min_v;
    case plan::AggKind::kMax:
      return st.max_v;
  }
  return Value::Null();
}

/// Folds `src` into `dst`. DISTINCT aggregates re-accumulate the source
/// set element by element so values seen by both partials are not
/// double-counted.
void MergeAggState(const BoundExpr& agg, AggState& dst, AggState& src) {
  if (agg.agg_kind == plan::AggKind::kCountStar) {
    dst.count += src.count;
    return;
  }
  if (agg.distinct) {
    if (src.distinct == nullptr) return;
    if (dst.distinct == nullptr) {
      dst.distinct = std::make_unique<std::unordered_set<Value, ValueHash>>();
    }
    for (const Value& v : *src.distinct) {
      if (!dst.distinct->insert(v).second) continue;
      dst.any = true;
      switch (agg.agg_kind) {
        case plan::AggKind::kCount:
          ++dst.count;
          break;
        case plan::AggKind::kSum:
        case plan::AggKind::kAvg:
          ++dst.count;
          dst.sum_d += v.AsDouble();
          dst.sum_i += v.AsInt();
          break;
        case plan::AggKind::kMin:
          if (dst.min_v.is_null() || v.Compare(dst.min_v) < 0) dst.min_v = v;
          break;
        case plan::AggKind::kMax:
          if (dst.max_v.is_null() || v.Compare(dst.max_v) > 0) dst.max_v = v;
          break;
        default:
          break;
      }
    }
    return;
  }
  dst.count += src.count;
  dst.sum_d += src.sum_d;
  dst.sum_i += src.sum_i;
  dst.any = dst.any || src.any;
  if (!src.min_v.is_null() &&
      (dst.min_v.is_null() || src.min_v.Compare(dst.min_v) < 0)) {
    dst.min_v = src.min_v;
  }
  if (!src.max_v.is_null() &&
      (dst.max_v.is_null() || src.max_v.Compare(dst.max_v) > 0)) {
    dst.max_v = src.max_v;
  }
}

/// Hash table mapping group keys to per-aggregate states; groups keep
/// first-seen order. Shared by the serial HashAggregateOp and the
/// per-morsel partial aggregation of the parallel pipeline.
class GroupTable {
 public:
  GroupTable(const std::vector<plan::BoundExprPtr>* group_by,
             const std::vector<plan::BoundExprPtr>* aggregates)
      : group_by_(group_by), aggregates_(aggregates) {}

  size_t num_groups() const { return keys_.size(); }

  Status Accumulate(const Chunk& chunk, size_t row) {
    std::vector<Value> key;
    key.reserve(group_by_->size());
    for (const auto& g : *group_by_) {
      HANA_ASSIGN_OR_RETURN(Value v, EvalExpr(*g, chunk, row));
      key.push_back(std::move(v));
    }
    std::vector<AggState>& states = states_[FindOrCreate(key)];
    for (size_t a = 0; a < aggregates_->size(); ++a) {
      const BoundExpr& agg = *(*aggregates_)[a];
      AggState& st = states[a];
      if (agg.agg_kind == plan::AggKind::kCountStar) {
        ++st.count;
        continue;
      }
      HANA_ASSIGN_OR_RETURN(Value v, EvalExpr(*agg.child0, chunk, row));
      if (v.is_null()) continue;
      if (agg.distinct) {
        if (st.distinct == nullptr) {
          st.distinct =
              std::make_unique<std::unordered_set<Value, ValueHash>>();
        }
        if (!st.distinct->insert(v).second) continue;
      }
      st.any = true;
      switch (agg.agg_kind) {
        case plan::AggKind::kCount:
          ++st.count;
          break;
        case plan::AggKind::kSum:
        case plan::AggKind::kAvg:
          ++st.count;
          st.sum_d += v.AsDouble();
          st.sum_i += v.AsInt();
          break;
        case plan::AggKind::kMin:
          if (st.min_v.is_null() || v.Compare(st.min_v) < 0) st.min_v = v;
          break;
        case plan::AggKind::kMax:
          if (st.max_v.is_null() || v.Compare(st.max_v) > 0) st.max_v = v;
          break;
        default:
          break;
      }
    }
    return Status::OK();
  }

  /// Folds `src` into this table, visiting src groups in their
  /// first-seen order. Merging morsel partials in ascending morsel
  /// order therefore reproduces the exact group order (and floating
  /// point sums, morsel by morsel) of any other run with the same
  /// morsel decomposition — the thread count never matters.
  void MergeFrom(GroupTable& src) {
    for (size_t g = 0; g < src.keys_.size(); ++g) {
      std::vector<AggState>& states = states_[FindOrCreate(src.keys_[g])];
      for (size_t a = 0; a < aggregates_->size(); ++a) {
        MergeAggState(*(*aggregates_)[a], states[a], src.states_[g][a]);
      }
    }
  }

  /// A global aggregate over an empty input still emits one row.
  void EnsureGlobalGroup() {
    if (group_by_->empty() && keys_.empty() && !aggregates_->empty()) {
      keys_.push_back({});
      states_.emplace_back(aggregates_->size());
    }
  }

  /// Boxes group g as an output row: key values then finalized
  /// aggregates.
  std::vector<Value> EmitRow(size_t g) const {
    std::vector<Value> row = keys_[g];
    row.reserve(row.size() + aggregates_->size());
    for (size_t a = 0; a < aggregates_->size(); ++a) {
      row.push_back(FinalizeAgg((*aggregates_)[a].get(), states_[g][a]));
    }
    return row;
  }

 private:
  size_t FindOrCreate(const std::vector<Value>& key) {
    size_t h = HashKey(key);
    auto [lo, hi] = groups_.equal_range(h);
    for (auto it = lo; it != hi; ++it) {
      const std::vector<Value>& existing = keys_[it->second];
      bool equal = true;
      for (size_t i = 0; i < key.size(); ++i) {
        if (key[i].Compare(existing[i]) != 0) {  // Group-by: NULL == NULL.
          equal = false;
          break;
        }
      }
      if (equal) return it->second;
    }
    size_t group_index = keys_.size();
    keys_.push_back(key);
    states_.emplace_back(aggregates_->size());
    groups_.emplace(h, group_index);
    return group_index;
  }

  const std::vector<plan::BoundExprPtr>* group_by_;
  const std::vector<plan::BoundExprPtr>* aggregates_;
  std::unordered_multimap<size_t, size_t> groups_;
  std::vector<std::vector<Value>> keys_;
  std::vector<std::vector<AggState>> states_;
};

class HashAggregateOp : public PhysicalOp {
 public:
  HashAggregateOp(std::shared_ptr<Schema> schema, PhysicalOpPtr child,
                  const std::vector<plan::BoundExprPtr>* group_by,
                  const std::vector<plan::BoundExprPtr>* aggregates)
      : PhysicalOp(std::move(schema)),
        child_(std::move(child)),
        group_by_(group_by),
        aggregates_(aggregates),
        table_(group_by, aggregates) {}

  Status Open() override {
    table_ = GroupTable(group_by_, aggregates_);
    emitted_ = 0;
    HANA_RETURN_IF_ERROR(child_->Open());
    while (true) {
      HANA_ASSIGN_OR_RETURN(std::optional<Chunk> in, child_->Next());
      if (!in.has_value()) break;
      for (size_t r = 0; r < in->num_rows(); ++r) {
        HANA_RETURN_IF_ERROR(table_.Accumulate(*in, r));
      }
    }
    table_.EnsureGlobalGroup();
    return Status::OK();
  }

  Result<std::optional<Chunk>> Next() override {
    if (emitted_ >= table_.num_groups()) return std::optional<Chunk>();
    Chunk out = Chunk::Empty(schema_);
    size_t end =
        std::min(table_.num_groups(), emitted_ + storage::kDefaultChunkRows);
    for (size_t g = emitted_; g < end; ++g) out.AppendRow(table_.EmitRow(g));
    emitted_ = end;
    return std::optional<Chunk>(std::move(out));
  }

 private:
  PhysicalOpPtr child_;
  const std::vector<plan::BoundExprPtr>* group_by_;
  const std::vector<plan::BoundExprPtr>* aggregates_;
  GroupTable table_;
  size_t emitted_ = 0;
};

/// Morsel-driven parallel pipeline: partitioned scan → [filter] →
/// [project] → [partial aggregate], one task per morsel. The morsel
/// decomposition, per-morsel processing and the merge/emission order
/// are all fixed by the plan, so output is bit-identical for any
/// degree of parallelism (including 1).
class MorselPipelineOp : public PhysicalOp {
 public:
  MorselPipelineOp(std::shared_ptr<Schema> schema, ExecContext* ctx,
                   const LogicalOp* scan, const LogicalOp* filter,
                   const LogicalOp* project, const LogicalOp* aggregate)
      : PhysicalOp(std::move(schema)),
        ctx_(ctx),
        scan_(scan),
        filter_(filter),
        project_(project),
        aggregate_(aggregate) {}

  Status Open() override {
    chunks_.clear();
    merged_.reset();
    emitted_groups_ = 0;
    emit_morsel_ = 0;
    emit_chunk_ = 0;
    ParallelPolicy policy = ctx_->parallel_policy();
    HANA_ASSIGN_OR_RETURN(
        std::optional<PartitionSource> source,
        ctx_->OpenPartitionedScan(*scan_, policy.morsel_rows));
    if (!source.has_value()) {
      return Status::Internal("morsel pipeline over a non-partitioned scan");
    }
    size_t n = source->num_morsels;
    std::vector<std::unique_ptr<GroupTable>> partials(aggregate_ ? n : 0);
    chunks_.assign(n, {});
    std::vector<Status> statuses(n);
    auto run_morsel = [&](size_t m) {
      GroupTable* partial = nullptr;
      if (aggregate_ != nullptr) {
        partials[m] = std::make_unique<GroupTable>(&aggregate_->group_by,
                                                   &aggregate_->aggregates);
        partial = partials[m].get();
      }
      statuses[m] = ProcessMorsel(*source, m, partial, &chunks_[m]);
    };
    if (policy.pool != nullptr && policy.dop > 1 && n > 1) {
      policy.pool->ParallelFor(n, run_morsel, policy.dop);
    } else {
      for (size_t m = 0; m < n; ++m) run_morsel(m);
    }
    // First failure in morsel order wins (deterministic error too).
    for (Status& s : statuses) HANA_RETURN_IF_ERROR(s);
    if (aggregate_ != nullptr) {
      merged_ = std::make_unique<GroupTable>(&aggregate_->group_by,
                                             &aggregate_->aggregates);
      for (auto& p : partials) merged_->MergeFrom(*p);
      merged_->EnsureGlobalGroup();
      chunks_.clear();
    }
    return Status::OK();
  }

  Result<std::optional<Chunk>> Next() override {
    if (merged_ != nullptr) {
      if (emitted_groups_ >= merged_->num_groups()) {
        return std::optional<Chunk>();
      }
      Chunk out = Chunk::Empty(schema_);
      size_t end = std::min(merged_->num_groups(),
                            emitted_groups_ + storage::kDefaultChunkRows);
      for (size_t g = emitted_groups_; g < end; ++g) {
        out.AppendRow(merged_->EmitRow(g));
      }
      emitted_groups_ = end;
      return std::optional<Chunk>(std::move(out));
    }
    while (emit_morsel_ < chunks_.size()) {
      if (emit_chunk_ < chunks_[emit_morsel_].size()) {
        return std::optional<Chunk>(
            std::move(chunks_[emit_morsel_][emit_chunk_++]));
      }
      ++emit_morsel_;
      emit_chunk_ = 0;
    }
    return std::optional<Chunk>();
  }

 private:
  Status ProcessMorsel(const PartitionSource& source, size_t m,
                       GroupTable* partial,
                       std::vector<Chunk>* out_chunks) const {
    Status inner = Status::OK();
    Status scan_status = source.scan_morsel(m, [&](const Chunk& in) {
      inner = ProcessChunk(in, partial, out_chunks);
      return inner.ok();
    });
    HANA_RETURN_IF_ERROR(inner);
    return scan_status;
  }

  /// Runs the filter/project stages over one scanned chunk, then either
  /// folds the rows into the morsel's partial aggregate or stores the
  /// chunk for ordered emission.
  Status ProcessChunk(const Chunk& in, GroupTable* partial,
                      std::vector<Chunk>* out_chunks) const {
    const Chunk* stage = &in;
    Chunk filtered;
    if (filter_ != nullptr) {
      filtered = Chunk::Empty(in.schema);
      for (size_t r = 0; r < in.num_rows(); ++r) {
        HANA_ASSIGN_OR_RETURN(Value keep,
                              EvalExpr(*filter_->predicate, in, r));
        if (keep.is_null() || !IsTruthy(keep)) continue;
        for (size_t c = 0; c < filtered.columns.size(); ++c) {
          filtered.columns[c]->Append(in.columns[c]->GetValue(r));
        }
      }
      stage = &filtered;
    }
    Chunk projected;
    if (project_ != nullptr) {
      projected = Chunk::Empty(project_->schema);
      for (size_t r = 0; r < stage->num_rows(); ++r) {
        for (size_t c = 0; c < project_->exprs.size(); ++c) {
          HANA_ASSIGN_OR_RETURN(Value v,
                                EvalExpr(*project_->exprs[c], *stage, r));
          projected.columns[c]->Append(v);
        }
      }
      stage = &projected;
    }
    if (partial != nullptr) {
      for (size_t r = 0; r < stage->num_rows(); ++r) {
        HANA_RETURN_IF_ERROR(partial->Accumulate(*stage, r));
      }
      return Status::OK();
    }
    if (stage->num_rows() == 0) return Status::OK();
    Chunk out = stage == &in
                    ? in
                    : std::move(stage == &projected ? projected : filtered);
    out.schema = schema_;
    out_chunks->push_back(std::move(out));
    return Status::OK();
  }

  ExecContext* ctx_;
  const LogicalOp* scan_;
  const LogicalOp* filter_;
  const LogicalOp* project_;
  const LogicalOp* aggregate_;
  // Per-morsel output chunks (streaming pipelines), emitted in morsel
  // order; or the merged group table (aggregating pipelines).
  std::vector<std::vector<Chunk>> chunks_;
  std::unique_ptr<GroupTable> merged_;
  size_t emitted_groups_ = 0;
  size_t emit_morsel_ = 0;
  size_t emit_chunk_ = 0;
};

class SortOp : public PhysicalOp {
 public:
  SortOp(PhysicalOpPtr child, const std::vector<plan::SortKey>* keys)
      : PhysicalOp(child->schema()), child_(std::move(child)), keys_(keys) {}

  Status Open() override {
    emitted_ = 0;
    HANA_ASSIGN_OR_RETURN(rows_, Materialize(child_.get()));
    std::vector<std::vector<Value>> sort_keys(rows_.size());
    for (size_t i = 0; i < rows_.size(); ++i) {
      for (const auto& k : *keys_) {
        HANA_ASSIGN_OR_RETURN(Value v, EvalExprRow(*k.expr, rows_[i]));
        sort_keys[i].push_back(std::move(v));
      }
    }
    std::vector<size_t> order(rows_.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) {
                       for (size_t k = 0; k < keys_->size(); ++k) {
                         int cmp = sort_keys[a][k].Compare(sort_keys[b][k]);
                         if (cmp != 0) {
                           return (*keys_)[k].ascending ? cmp < 0 : cmp > 0;
                         }
                       }
                       return false;
                     });
    std::vector<std::vector<Value>> sorted;
    sorted.reserve(rows_.size());
    for (size_t i : order) sorted.push_back(std::move(rows_[i]));
    rows_ = std::move(sorted);
    return Status::OK();
  }

  Result<std::optional<Chunk>> Next() override {
    if (emitted_ >= rows_.size()) return std::optional<Chunk>();
    Chunk out = Chunk::Empty(schema_);
    size_t end = std::min(rows_.size(), emitted_ + storage::kDefaultChunkRows);
    for (size_t r = emitted_; r < end; ++r) out.AppendRow(rows_[r]);
    emitted_ = end;
    return std::optional<Chunk>(std::move(out));
  }

 private:
  PhysicalOpPtr child_;
  const std::vector<plan::SortKey>* keys_;
  std::vector<std::vector<Value>> rows_;
  size_t emitted_ = 0;
};

/// Plain remote query (optionally with a relocated local child).
class RemoteQueryOp : public PhysicalOp {
 public:
  RemoteQueryOp(const LogicalOp* logical, ExecContext* ctx,
                PhysicalOpPtr relocated_child)
      : PhysicalOp(logical->schema),
        logical_(logical),
        ctx_(ctx),
        relocated_child_(std::move(relocated_child)) {}

  Status Open() override {
    storage::Table relocated;
    const storage::Table* relocated_ptr = nullptr;
    if (relocated_child_ != nullptr) {
      HANA_RETURN_IF_ERROR(relocated_child_->Open());
      relocated = storage::Table(relocated_child_->schema());
      while (true) {
        HANA_ASSIGN_OR_RETURN(std::optional<Chunk> chunk,
                              relocated_child_->Next());
        if (!chunk.has_value()) break;
        relocated.AppendChunk(std::move(*chunk));
      }
      relocated_ptr = &relocated;
    }
    HANA_ASSIGN_OR_RETURN(stream_,
                          ctx_->OpenRemoteQuery(*logical_, nullptr,
                                                relocated_ptr));
    return Status::OK();
  }

  Result<std::optional<Chunk>> Next() override { return stream_(); }

 private:
  const LogicalOp* logical_;
  ExecContext* ctx_;
  PhysicalOpPtr relocated_child_;
  ChunkStream stream_;
};

/// Semijoin federation strategy: materialize the local (left) side,
/// ship its distinct join keys into the remote query, then hash-join
/// locally with the reduced remote result.
class PushdownJoinOp : public PhysicalOp {
 public:
  PushdownJoinOp(const LogicalOp* join, PhysicalOpPtr left, ExecContext* ctx)
      : PhysicalOp(join->schema),
        join_(join),
        left_(std::move(left)),
        ctx_(ctx) {}

  Status Open() override {
    emitted_ = 0;
    out_rows_.clear();
    HANA_ASSIGN_OR_RETURN(left_rows_, Materialize(left_.get()));
    size_t left_arity = left_->schema()->num_columns();
    plan::JoinConditionParts parts =
        plan::AnalyzeJoinCondition(*join_->condition, left_arity);
    if (parts.equi_keys.empty()) {
      return Status::Internal("semijoin pushdown requires an equi key");
    }
    // Distinct keys of the first equi pair drive the IN-list.
    PushdownInList in_list;
    in_list.column = join_->pushdown_remote_column;
    std::unordered_set<Value, ValueHash> seen;
    for (const auto& row : left_rows_) {
      HANA_ASSIGN_OR_RETURN(Value v,
                            EvalExprRow(*parts.equi_keys[0].left, row));
      if (v.is_null()) continue;
      if (seen.insert(v).second) in_list.values.push_back(v);
    }
    const LogicalOp& rq = *join_->children[1];
    HANA_ASSIGN_OR_RETURN(ChunkStream stream,
                          ctx_->OpenRemoteQuery(rq, &in_list, nullptr));
    // Build a hash table over the (reduced) remote rows.
    std::unordered_multimap<size_t, size_t> table;
    std::vector<std::vector<Value>> remote_rows;
    std::vector<Value> remote_keys;
    while (true) {
      HANA_ASSIGN_OR_RETURN(std::optional<Chunk> chunk, stream());
      if (!chunk.has_value()) break;
      for (size_t r = 0; r < chunk->num_rows(); ++r) {
        std::vector<Value> row = chunk->Row(r);
        HANA_ASSIGN_OR_RETURN(Value k,
                              EvalExprRow(*parts.equi_keys[0].right, row));
        table.emplace(k.Hash(), remote_rows.size());
        remote_keys.push_back(std::move(k));
        remote_rows.push_back(std::move(row));
      }
    }
    // Probe with the local rows.
    for (const auto& left_row : left_rows_) {
      HANA_ASSIGN_OR_RETURN(Value k,
                            EvalExprRow(*parts.equi_keys[0].left, left_row));
      if (k.is_null()) continue;
      auto [lo, hi] = table.equal_range(k.Hash());
      for (auto it = lo; it != hi; ++it) {
        if (remote_keys[it->second].is_null() ||
            k.Compare(remote_keys[it->second]) != 0) {
          continue;
        }
        std::vector<Value> combined = left_row;
        const auto& rrow = remote_rows[it->second];
        combined.insert(combined.end(), rrow.begin(), rrow.end());
        // Remaining equi keys + residual re-checked on the combined row.
        bool keep = true;
        for (size_t e = 1; e < parts.equi_keys.size() && keep; ++e) {
          HANA_ASSIGN_OR_RETURN(Value a, EvalExprRow(*parts.equi_keys[e].left,
                                                     left_row));
          HANA_ASSIGN_OR_RETURN(Value b, EvalExprRow(*parts.equi_keys[e].right,
                                                     rrow));
          keep = !a.is_null() && !b.is_null() && a.Compare(b) == 0;
        }
        if (keep && parts.residual != nullptr) {
          HANA_ASSIGN_OR_RETURN(Value v,
                                EvalExprRow(*parts.residual, combined));
          keep = !v.is_null() && IsTruthy(v);
        }
        if (keep) out_rows_.push_back(std::move(combined));
      }
    }
    return Status::OK();
  }

  Result<std::optional<Chunk>> Next() override {
    if (emitted_ >= out_rows_.size()) return std::optional<Chunk>();
    Chunk out = Chunk::Empty(schema_);
    size_t end =
        std::min(out_rows_.size(), emitted_ + storage::kDefaultChunkRows);
    for (size_t r = emitted_; r < end; ++r) out.AppendRow(out_rows_[r]);
    emitted_ = end;
    return std::optional<Chunk>(std::move(out));
  }

 private:
  const LogicalOp* join_;
  PhysicalOpPtr left_;
  ExecContext* ctx_;
  std::vector<std::vector<Value>> left_rows_;
  std::vector<std::vector<Value>> out_rows_;
  size_t emitted_ = 0;
};

/// The operator chain a MorselPipelineOp can absorb:
/// Aggregate?(Project?(Filter?(Scan))).
struct MorselPipeline {
  const LogicalOp* aggregate = nullptr;
  const LogicalOp* project = nullptr;
  const LogicalOp* filter = nullptr;
  const LogicalOp* scan = nullptr;
};

std::optional<MorselPipeline> MatchMorselPipeline(const LogicalOp& op) {
  MorselPipeline p;
  const LogicalOp* cur = &op;
  if (cur->kind == LogicalKind::kAggregate) {
    p.aggregate = cur;
    cur = cur->children[0].get();
  }
  if (cur->kind == LogicalKind::kProject && !cur->children.empty()) {
    p.project = cur;
    cur = cur->children[0].get();
  }
  if (cur->kind == LogicalKind::kFilter) {
    p.filter = cur;
    cur = cur->children[0].get();
  }
  if (cur->kind != LogicalKind::kScan) return std::nullopt;
  p.scan = cur;
  return p;
}

/// Lowers `logical` to a MorselPipelineOp when the host context grants a
/// pool and can decompose the scan into morsels; null otherwise. The
/// decision depends only on the plan shape and the scan target — never
/// on the degree of parallelism — so a query runs through the same
/// operator at every thread count.
Result<PhysicalOpPtr> TryMorselPipeline(const plan::LogicalOp& logical,
                                        ExecContext* ctx) {
  std::optional<MorselPipeline> p = MatchMorselPipeline(logical);
  if (!p.has_value()) return PhysicalOpPtr();
  ParallelPolicy policy = ctx->parallel_policy();
  if (policy.pool == nullptr) return PhysicalOpPtr();
  HANA_ASSIGN_OR_RETURN(
      std::optional<PartitionSource> source,
      ctx->OpenPartitionedScan(*p->scan, policy.morsel_rows));
  if (!source.has_value()) return PhysicalOpPtr();
  return PhysicalOpPtr(std::make_unique<MorselPipelineOp>(
      logical.schema, ctx, p->scan, p->filter, p->project, p->aggregate));
}

/// `parallel_ok` is false under a LIMIT whose input streams lazily: an
/// eager morsel pipeline there would scan far past the cutoff. Blocking
/// operators (aggregate, sort, join builds) consume their whole input
/// anyway and reset the flag for their subtrees.
Result<PhysicalOpPtr> BuildPhysicalImpl(const plan::LogicalOp& logical,
                                        ExecContext* ctx, bool parallel_ok);

Result<PhysicalOpPtr> BuildPhysicalImpl(const plan::LogicalOp& logical,
                                        ExecContext* ctx, bool parallel_ok) {
  switch (logical.kind) {
    case LogicalKind::kScan:
      if (parallel_ok) {
        HANA_ASSIGN_OR_RETURN(PhysicalOpPtr op,
                              TryMorselPipeline(logical, ctx));
        if (op != nullptr) return op;
      }
      return PhysicalOpPtr(std::make_unique<StreamOp>(
          logical.schema, [&logical, ctx] { return ctx->OpenScan(logical); }));
    case LogicalKind::kTableFunctionScan:
      return PhysicalOpPtr(std::make_unique<StreamOp>(
          logical.schema,
          [&logical, ctx] { return ctx->OpenTableFunction(logical); }));
    case LogicalKind::kRemoteQuery: {
      PhysicalOpPtr relocated;
      if (logical.relocate_local_child && !logical.children.empty()) {
        HANA_ASSIGN_OR_RETURN(relocated,
                              BuildPhysicalPlan(*logical.children[0], ctx));
      }
      return PhysicalOpPtr(std::make_unique<RemoteQueryOp>(
          &logical, ctx, std::move(relocated)));
    }
    case LogicalKind::kFilter: {
      if (parallel_ok) {
        HANA_ASSIGN_OR_RETURN(PhysicalOpPtr op,
                              TryMorselPipeline(logical, ctx));
        if (op != nullptr) return op;
      }
      HANA_ASSIGN_OR_RETURN(
          PhysicalOpPtr child,
          BuildPhysicalImpl(*logical.children[0], ctx, parallel_ok));
      return PhysicalOpPtr(std::make_unique<FilterOp>(
          std::move(child), logical.predicate.get()));
    }
    case LogicalKind::kProject: {
      if (parallel_ok && !logical.children.empty()) {
        HANA_ASSIGN_OR_RETURN(PhysicalOpPtr op,
                              TryMorselPipeline(logical, ctx));
        if (op != nullptr) return op;
      }
      PhysicalOpPtr child;
      if (!logical.children.empty()) {
        HANA_ASSIGN_OR_RETURN(
            child, BuildPhysicalImpl(*logical.children[0], ctx, parallel_ok));
      }
      return PhysicalOpPtr(std::make_unique<ProjectOp>(
          logical.schema, std::move(child), &logical.exprs));
    }
    case LogicalKind::kJoin: {
      HANA_ASSIGN_OR_RETURN(
          PhysicalOpPtr left,
          BuildPhysicalImpl(*logical.children[0], ctx, true));
      if (logical.semijoin_pushdown) {
        return PhysicalOpPtr(std::make_unique<PushdownJoinOp>(
            &logical, std::move(left), ctx));
      }
      HANA_ASSIGN_OR_RETURN(
          PhysicalOpPtr right,
          BuildPhysicalImpl(*logical.children[1], ctx, true));
      size_t left_arity = logical.children[0]->schema->num_columns();
      if (logical.condition != nullptr && logical.join_kind != JoinKind::kCross) {
        plan::JoinConditionParts parts =
            plan::AnalyzeJoinCondition(*logical.condition, left_arity);
        if (!parts.equi_keys.empty()) {
          return PhysicalOpPtr(std::make_unique<HashJoinOp>(
              logical.schema, logical.join_kind, std::move(left),
              std::move(right), std::move(parts)));
        }
      }
      return PhysicalOpPtr(std::make_unique<NestedLoopJoinOp>(
          logical.schema, logical.join_kind, std::move(left), std::move(right),
          logical.condition.get()));
    }
    case LogicalKind::kAggregate: {
      // Aggregation is blocking, so the pipeline is eligible even under
      // a LIMIT.
      HANA_ASSIGN_OR_RETURN(PhysicalOpPtr op, TryMorselPipeline(logical, ctx));
      if (op != nullptr) return op;
      HANA_ASSIGN_OR_RETURN(
          PhysicalOpPtr child,
          BuildPhysicalImpl(*logical.children[0], ctx, true));
      return PhysicalOpPtr(std::make_unique<HashAggregateOp>(
          logical.schema, std::move(child), &logical.group_by,
          &logical.aggregates));
    }
    case LogicalKind::kSort: {
      HANA_ASSIGN_OR_RETURN(
          PhysicalOpPtr child,
          BuildPhysicalImpl(*logical.children[0], ctx, true));
      return PhysicalOpPtr(
          std::make_unique<SortOp>(std::move(child), &logical.sort_keys));
    }
    case LogicalKind::kLimit: {
      HANA_ASSIGN_OR_RETURN(
          PhysicalOpPtr child,
          BuildPhysicalImpl(*logical.children[0], ctx, false));
      return PhysicalOpPtr(
          std::make_unique<LimitOp>(std::move(child), logical.limit));
    }
    case LogicalKind::kUnion: {
      std::vector<PhysicalOpPtr> children;
      for (const auto& c : logical.children) {
        HANA_ASSIGN_OR_RETURN(PhysicalOpPtr child,
                              BuildPhysicalImpl(*c, ctx, parallel_ok));
        children.push_back(std::move(child));
      }
      return PhysicalOpPtr(std::make_unique<UnionOp>(
          logical.schema, std::move(children), ctx));
    }
  }
  return Status::Internal("unknown logical operator");
}

}  // namespace

Result<PhysicalOpPtr> BuildPhysicalPlan(const plan::LogicalOp& logical,
                                        ExecContext* ctx) {
  return BuildPhysicalImpl(logical, ctx, /*parallel_ok=*/true);
}

Result<storage::Table> DrainToTable(PhysicalOp* op) {
  storage::Table table(op->schema());
  HANA_RETURN_IF_ERROR(op->Open());
  while (true) {
    HANA_ASSIGN_OR_RETURN(std::optional<Chunk> chunk, op->Next());
    if (!chunk.has_value()) break;
    table.AppendChunk(std::move(*chunk));
  }
  return table;
}

Result<storage::Table> ExecutePlan(const plan::LogicalOp& logical,
                                   ExecContext* ctx) {
  HANA_ASSIGN_OR_RETURN(PhysicalOpPtr root, BuildPhysicalPlan(logical, ctx));
  return DrainToTable(root.get());
}

}  // namespace hana::exec
