#ifndef HANA_EXEC_EXECUTOR_H_
#define HANA_EXEC_EXECUTOR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "exec/operators.h"
#include "plan/logical.h"

namespace hana::exec {

/// Per-pipeline execution counters collected by the pipeline executor
/// (surfaced by the platform as `last_pipeline_stats()` for EXPLAIN and
/// benchmarking). Counters never influence results.
struct PipelineStats {
  size_t id = 0;
  std::string label;     // "scan lineitem -> probe -> aggregate".
  size_t morsels = 0;    // Morsels the pipeline's source decomposed into.
  uint64_t rows = 0;     // Rows the pipeline's sink emitted (or staged,
                         // for join builds).
  double wall_ms = 0.0;  // Launch-to-finish wall time.
  double cpu_ms = 0.0;   // Summed task execution time (== wall time when
                         // the pipeline ran inline).
  size_t agg_partitions = 0;  // kGroups: radix partitions merged in
                              // phase 2 (0 for non-aggregate sinks).
  uint64_t agg_groups = 0;    // kGroups: groups the sink emitted.
};

/// ExecutePlan plus per-pipeline stats. When the context grants no pool
/// (or the plan degenerates to a single opaque pipeline) the plan runs
/// through the serial Volcano operators and `stats` stays empty.
[[nodiscard]] Result<storage::Table> ExecutePlanWithStats(
    const plan::LogicalOp& logical, ExecContext* ctx,
    std::vector<PipelineStats>* stats);

/// Stamps every node of `root` with the pipeline id the executor's
/// decomposition assigns it (rendered by LogicalOp::ToString as a
/// "[P<n>]" suffix) and returns one summary per pipeline for EXPLAIN.
/// Purely structural — nothing executes and no counters move. Returns
/// empty (and leaves the plan unstamped) when the context grants no
/// pool, since the plan would run serially.
std::vector<plan::PipelineSummary> AnnotatePipelines(plan::LogicalOp* root,
                                                     ExecContext* ctx);

/// Lowers `logical` to a physical operator that runs the subtree
/// through the pipeline executor, or null when the context grants no
/// pool or the decomposition degenerates to a single opaque serial
/// pipeline (where the executor would only add overhead). The decision
/// depends only on the plan shape and the policy flags — never on the
/// degree of parallelism — so a query runs through the same operator at
/// every thread count.
/// Scans run at `view` (latest-visible by default).
[[nodiscard]] Result<PhysicalOpPtr> TrySubPipeline(
    const plan::LogicalOp& logical, ExecContext* ctx,
    const mvcc::ReadView& view = {});

}  // namespace hana::exec

#endif  // HANA_EXEC_EXECUTOR_H_
