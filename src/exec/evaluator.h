#ifndef HANA_EXEC_EVALUATOR_H_
#define HANA_EXEC_EVALUATOR_H_

#include "common/result.h"
#include "plan/bound_expr.h"
#include "storage/column_vector.h"

namespace hana::exec {

/// Evaluates a bound expression against row `row` of `chunk`.
/// SQL three-valued logic: comparisons involving NULL yield NULL; AND/OR
/// follow Kleene semantics; a filter keeps a row only when the predicate
/// evaluates to TRUE.
[[nodiscard]] Result<Value> EvalExpr(const plan::BoundExpr& expr,
                       const storage::Chunk& chunk, size_t row);

/// Evaluates against a boxed row (used by hash-join probe output and the
/// ESP engine).
[[nodiscard]] Result<Value> EvalExprRow(const plan::BoundExpr& expr,
                          const std::vector<Value>& row);

/// Evaluates `expr` for every row of `chunk` into one column vector,
/// typed by expr.type. Bare column references return the chunk's vector
/// unchanged (zero-copy); computed expressions evaluate row-wise into a
/// fresh vector. Used by the vectorized join-key path, which hashes and
/// compares keys on the resulting arrays instead of boxed rows.
[[nodiscard]] Result<storage::ColumnVectorPtr> EvalExprColumn(
    const plan::BoundExpr& expr, const storage::Chunk& chunk);

/// True when `v` is a non-null TRUE (or non-zero numeric).
bool IsTruthy(const Value& v);

}  // namespace hana::exec

#endif  // HANA_EXEC_EVALUATOR_H_
