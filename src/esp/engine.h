#ifndef HANA_ESP_ENGINE_H_
#define HANA_ESP_ENGINE_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/sync.h"
#include "hadoop/hdfs.h"
#include "plan/bound_expr.h"
#include "storage/column_table.h"

namespace hana::esp {

/// One event on a stream: an application timestamp (milliseconds) plus
/// one value per stream-schema column.
struct Event {
  int64_t timestamp_ms = 0;
  std::vector<Value> values;
};

using EventSink = std::function<void(const Event&)>;

class ContinuousQuery;
class CqBuilder;

/// Window specification for continuous queries (CCL KEEP clause).
struct WindowSpec {
  enum class Kind { kNone, kTumblingCount, kTumblingTime, kSlidingTime };
  Kind kind = Kind::kNone;
  size_t count = 0;      // kTumblingCount.
  int64_t millis = 0;    // Time-based windows.
};

/// Aggregate requested over a window ("SUM(pressure) AS p").
struct AggSpec {
  plan::AggKind kind = plan::AggKind::kCountStar;
  plan::BoundExprPtr arg;  // Null for COUNT(*).
  std::string alias;
  bool distinct = false;
};

/// One step of a pattern matcher: a predicate over the stream schema.
/// A pattern fires when its steps match in order within `within_ms`.
struct PatternSpec {
  std::vector<plan::BoundExprPtr> steps;
  int64_t within_ms = 0;
};

/// The stream engine: streams, continuous queries and synchronous event
/// dispatch. Mirrors the integration surface of the SAP Sybase ESP
/// (Section 3.2): prefilter/aggregate + forward, ESP join, HANA join.
///
/// Thread safety: one engine-wide mutex (esp.engine, rank 20) guards the
/// stream map, the query registry and all per-query runtime state —
/// queries run synchronously inside Publish, so finer-grained locking
/// would buy nothing. The query's Emit may forward into another stream
/// of the same engine; that re-entrant hop stays under the already-held
/// lock via PublishLocked rather than re-acquiring.
class EspEngine {
 public:
  EspEngine() = default;
  ~EspEngine();

  [[nodiscard]] Status CreateStream(const std::string& name,
                      std::shared_ptr<Schema> schema) EXCLUDES(mu_);
  [[nodiscard]] Result<std::shared_ptr<Schema>> StreamSchema(
      const std::string& name) const EXCLUDES(mu_);

  /// Publishes one event; all continuous queries attached to the stream
  /// run synchronously. Timestamps must be non-decreasing per stream.
  [[nodiscard]] Status Publish(const std::string& stream, int64_t timestamp_ms,
                 std::vector<Value> values) EXCLUDES(mu_);

  /// Closes all open windows (end of stream).
  void FlushAll() EXCLUDES(mu_);

  [[nodiscard]] Result<ContinuousQuery*> GetQuery(const std::string& name) const
      EXCLUDES(mu_);

  size_t total_events() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return total_events_;
  }

 private:
  friend class CqBuilder;
  friend class ContinuousQuery;

  struct StreamState {
    std::shared_ptr<Schema> schema;
    std::vector<ContinuousQuery*> queries;
    int64_t last_timestamp_ms = INT64_MIN;
  };

  /// Publish body for callers already inside the engine lock — the
  /// IntoStream forward path (ContinuousQuery::Emit) re-enters here.
  [[nodiscard]] Status PublishLocked(const std::string& stream,
                                     int64_t timestamp_ms,
                                     std::vector<Value> values) REQUIRES(mu_);

  /// Guards streams_, queries_, total_events_ and every query's runtime
  /// window/pattern state. Engine rank 20: may be followed by storage
  /// locks (IntoTable sinks append under storage.state, rank 65) but
  /// never by another engine-level lock.
  mutable Mutex mu_{"esp.engine", lock_rank::kEspEngine};

  std::map<std::string, StreamState> streams_ GUARDED_BY(mu_);
  std::vector<std::unique_ptr<ContinuousQuery>> queries_ GUARDED_BY(mu_);
  size_t total_events_ GUARDED_BY(mu_) = 0;
};

/// A compiled continuous query. Built through CqBuilder; processes
/// events synchronously as the engine publishes them.
///
/// Thread safety: compilation state (schemas, bound expressions, window
/// spec, sinks) is immutable after CqBuilder::Finish registers the
/// query; only the runtime window/pattern/counter members mutate, and
/// those are guarded by the owning engine's mutex. The private
/// processing hooks run inside EspEngine::Publish/FlushAll with that
/// lock held; because the lock is reached through engine_, they assert
/// the capability at entry (Mutex::AssertHeld) instead of REQUIRES.
class ContinuousQuery {
 public:
  const std::string& name() const { return name_; }
  const std::shared_ptr<Schema>& output_schema() const {
    return output_schema_;
  }

  /// Current retained window contents as a relational table — the
  /// "HANA join" use case (Figure 9): a HANA query may use the window
  /// as join partner.
  storage::Table WindowContents() const EXCLUDES(engine_->mu_);

  /// Forces any open time/count window to close and emit.
  void Flush() EXCLUDES(engine_->mu_);

  size_t events_in() const EXCLUDES(engine_->mu_) {
    MutexLock lock(engine_->mu_);
    return events_in_;
  }
  size_t events_out() const EXCLUDES(engine_->mu_) {
    MutexLock lock(engine_->mu_);
    return events_out_;
  }

 private:
  friend class EspEngine;
  friend class CqBuilder;

  void Process(const Event& event);      // Asserts engine_->mu_.
  void Emit(const Event& event);         // Asserts engine_->mu_.
  void CloseWindow(int64_t boundary_ms); // Asserts engine_->mu_.
  void FlushLocked();                    // Asserts engine_->mu_.
  [[nodiscard]] Result<Event> ApplyRowStages(const Event& event, bool* keep) const;

  EspEngine* engine_ = nullptr;
  std::string name_;
  std::shared_ptr<Schema> input_schema_;
  std::shared_ptr<Schema> row_schema_;  // After lookups + projection.
  std::shared_ptr<Schema> output_schema_;

  plan::BoundExprPtr filter_;                  // Over input schema.
  std::vector<plan::BoundExprPtr> projection_; // Over input schema.
  bool has_projection_ = false;

  // Enrichment (ESP join): slow-changing HANA data pushed into the
  // stream and joined by key.
  struct Lookup {
    std::map<Value, std::vector<Value>> table;
    plan::BoundExprPtr key;     // Over the current row shape.
    size_t payload_width = 0;
  };
  std::vector<Lookup> lookups_;

  WindowSpec window_;
  std::vector<plan::BoundExprPtr> group_by_;  // Over post-stage schema.
  std::vector<AggSpec> aggregates_;
  bool has_aggregation_ = false;

  PatternSpec pattern_;
  bool has_pattern_ = false;

  std::vector<EventSink> sinks_;
  std::string target_stream_;  // Forward into another stream.

  // Runtime state, mutated on every published event.
  std::vector<std::pair<int64_t, size_t>> pattern_progress_
      GUARDED_BY(engine_->mu_);
  std::deque<Event> window_events_ GUARDED_BY(engine_->mu_);
  int64_t window_start_ms_ GUARDED_BY(engine_->mu_) = -1;
  size_t events_in_ GUARDED_BY(engine_->mu_) = 0;
  size_t events_out_ GUARDED_BY(engine_->mu_) = 0;
};

/// Fluent builder for continuous queries. Expressions are SQL text
/// parsed and bound against the source stream's schema. The query under
/// construction is private to the builder until Finish registers it
/// under the engine lock, so the build steps themselves need none.
class CqBuilder {
 public:
  CqBuilder(EspEngine* engine, const std::string& source_stream);

  CqBuilder& Where(const std::string& predicate);
  CqBuilder& Select(const std::vector<std::string>& exprs);
  /// ESP join: joins each event against `dimension` on key equality,
  /// appending the dimension's non-key columns to the event.
  CqBuilder& LookupJoin(const storage::Table& dimension,
                        const std::string& stream_key_expr,
                        const std::string& table_key_column);
  CqBuilder& KeepRows(size_t rows);
  CqBuilder& KeepMillis(int64_t millis);
  CqBuilder& GroupBy(const std::vector<std::string>& keys,
                     const std::vector<std::string>& aggregates);
  /// Pattern detection: predicates that must match in order within the
  /// given duration; the emitted event carries the last step's values.
  CqBuilder& MatchPattern(const std::vector<std::string>& step_predicates,
                          int64_t within_ms);

  CqBuilder& IntoCallback(EventSink sink);
  /// Forward use case: window/projection results persist into a HANA
  /// column table owned by the caller.
  CqBuilder& IntoTable(storage::ColumnTable* table);
  /// Raw-archive use case: events appended to an HDFS file.
  CqBuilder& IntoHdfs(hadoop::Hdfs* hdfs, const std::string& path);
  CqBuilder& IntoStream(const std::string& derived_stream);

  /// Compiles and registers the query.
  [[nodiscard]] Result<ContinuousQuery*> Finish(const std::string& name);

 private:
  EspEngine* engine_;
  std::string source_;
  Status status_;
  std::unique_ptr<ContinuousQuery> query_;
  std::vector<std::string> pending_select_;
  std::vector<std::string> pending_group_keys_;
  std::vector<std::string> pending_aggs_;
  std::vector<std::string> pending_pattern_;
  int64_t pattern_within_ms_ = 0;
  std::string pending_where_;
  struct PendingLookup {
    const storage::Table* dimension;
    std::string stream_key;
    std::string table_key;
  };
  std::vector<PendingLookup> pending_lookups_;
};

}  // namespace hana::esp

#endif  // HANA_ESP_ENGINE_H_
