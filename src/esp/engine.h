#ifndef HANA_ESP_ENGINE_H_
#define HANA_ESP_ENGINE_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "hadoop/hdfs.h"
#include "plan/bound_expr.h"
#include "storage/column_table.h"

namespace hana::esp {

/// One event on a stream: an application timestamp (milliseconds) plus
/// one value per stream-schema column.
struct Event {
  int64_t timestamp_ms = 0;
  std::vector<Value> values;
};

using EventSink = std::function<void(const Event&)>;

class EspEngine;

/// Window specification for continuous queries (CCL KEEP clause).
struct WindowSpec {
  enum class Kind { kNone, kTumblingCount, kTumblingTime, kSlidingTime };
  Kind kind = Kind::kNone;
  size_t count = 0;      // kTumblingCount.
  int64_t millis = 0;    // Time-based windows.
};

/// Aggregate requested over a window ("SUM(pressure) AS p").
struct AggSpec {
  plan::AggKind kind = plan::AggKind::kCountStar;
  plan::BoundExprPtr arg;  // Null for COUNT(*).
  std::string alias;
  bool distinct = false;
};

/// One step of a pattern matcher: a predicate over the stream schema.
/// A pattern fires when its steps match in order within `within_ms`.
struct PatternSpec {
  std::vector<plan::BoundExprPtr> steps;
  int64_t within_ms = 0;
};

/// A compiled continuous query. Built through CqBuilder; processes
/// events synchronously as the engine publishes them.
class ContinuousQuery {
 public:
  const std::string& name() const { return name_; }
  const std::shared_ptr<Schema>& output_schema() const {
    return output_schema_;
  }

  /// Current retained window contents as a relational table — the
  /// "HANA join" use case (Figure 9): a HANA query may use the window
  /// as join partner.
  storage::Table WindowContents() const;

  /// Forces any open time/count window to close and emit.
  void Flush();

  size_t events_in() const { return events_in_; }
  size_t events_out() const { return events_out_; }

 private:
  friend class EspEngine;
  friend class CqBuilder;

  void Process(const Event& event);
  void Emit(const Event& event);
  void CloseWindow(int64_t boundary_ms);
  [[nodiscard]] Result<Event> ApplyRowStages(const Event& event, bool* keep) const;

  EspEngine* engine_ = nullptr;
  std::string name_;
  std::shared_ptr<Schema> input_schema_;
  std::shared_ptr<Schema> row_schema_;  // After lookups + projection.
  std::shared_ptr<Schema> output_schema_;

  plan::BoundExprPtr filter_;                  // Over input schema.
  std::vector<plan::BoundExprPtr> projection_; // Over input schema.
  bool has_projection_ = false;

  // Enrichment (ESP join): slow-changing HANA data pushed into the
  // stream and joined by key.
  struct Lookup {
    std::map<Value, std::vector<Value>> table;
    plan::BoundExprPtr key;     // Over the current row shape.
    size_t payload_width = 0;
  };
  std::vector<Lookup> lookups_;

  WindowSpec window_;
  std::vector<plan::BoundExprPtr> group_by_;  // Over post-stage schema.
  std::vector<AggSpec> aggregates_;
  bool has_aggregation_ = false;

  PatternSpec pattern_;
  bool has_pattern_ = false;
  std::vector<std::pair<int64_t, size_t>> pattern_progress_;

  std::deque<Event> window_events_;
  int64_t window_start_ms_ = -1;

  std::vector<EventSink> sinks_;
  std::string target_stream_;  // Forward into another stream.

  size_t events_in_ = 0;
  size_t events_out_ = 0;
};

/// Fluent builder for continuous queries. Expressions are SQL text
/// parsed and bound against the source stream's schema.
class CqBuilder {
 public:
  CqBuilder(EspEngine* engine, const std::string& source_stream);

  CqBuilder& Where(const std::string& predicate);
  CqBuilder& Select(const std::vector<std::string>& exprs);
  /// ESP join: joins each event against `dimension` on key equality,
  /// appending the dimension's non-key columns to the event.
  CqBuilder& LookupJoin(const storage::Table& dimension,
                        const std::string& stream_key_expr,
                        const std::string& table_key_column);
  CqBuilder& KeepRows(size_t rows);
  CqBuilder& KeepMillis(int64_t millis);
  CqBuilder& GroupBy(const std::vector<std::string>& keys,
                     const std::vector<std::string>& aggregates);
  /// Pattern detection: predicates that must match in order within the
  /// given duration; the emitted event carries the last step's values.
  CqBuilder& MatchPattern(const std::vector<std::string>& step_predicates,
                          int64_t within_ms);

  CqBuilder& IntoCallback(EventSink sink);
  /// Forward use case: window/projection results persist into a HANA
  /// column table owned by the caller.
  CqBuilder& IntoTable(storage::ColumnTable* table);
  /// Raw-archive use case: events appended to an HDFS file.
  CqBuilder& IntoHdfs(hadoop::Hdfs* hdfs, const std::string& path);
  CqBuilder& IntoStream(const std::string& derived_stream);

  /// Compiles and registers the query.
  [[nodiscard]] Result<ContinuousQuery*> Finish(const std::string& name);

 private:
  EspEngine* engine_;
  std::string source_;
  Status status_;
  std::unique_ptr<ContinuousQuery> query_;
  std::vector<std::string> pending_select_;
  std::vector<std::string> pending_group_keys_;
  std::vector<std::string> pending_aggs_;
  std::vector<std::string> pending_pattern_;
  int64_t pattern_within_ms_ = 0;
  std::string pending_where_;
  struct PendingLookup {
    const storage::Table* dimension;
    std::string stream_key;
    std::string table_key;
  };
  std::vector<PendingLookup> pending_lookups_;
};

/// The stream engine: streams, continuous queries and synchronous event
/// dispatch. Mirrors the integration surface of the SAP Sybase ESP
/// (Section 3.2): prefilter/aggregate + forward, ESP join, HANA join.
class EspEngine {
 public:
  EspEngine() = default;

  [[nodiscard]] Status CreateStream(const std::string& name,
                      std::shared_ptr<Schema> schema);
  [[nodiscard]] Result<std::shared_ptr<Schema>> StreamSchema(const std::string& name) const;

  /// Publishes one event; all continuous queries attached to the stream
  /// run synchronously. Timestamps must be non-decreasing per stream.
  [[nodiscard]] Status Publish(const std::string& stream, int64_t timestamp_ms,
                 std::vector<Value> values);

  /// Closes all open windows (end of stream).
  void FlushAll();

  [[nodiscard]] Result<ContinuousQuery*> GetQuery(const std::string& name) const;

  size_t total_events() const { return total_events_; }

 private:
  friend class CqBuilder;
  friend class ContinuousQuery;

  struct StreamState {
    std::shared_ptr<Schema> schema;
    std::vector<ContinuousQuery*> queries;
    int64_t last_timestamp_ms = INT64_MIN;
  };

  std::map<std::string, StreamState> streams_;
  std::vector<std::unique_ptr<ContinuousQuery>> queries_;
  size_t total_events_ = 0;
};

}  // namespace hana::esp

#endif  // HANA_ESP_ENGINE_H_
