#include "esp/engine.h"

#include <algorithm>
#include <unordered_set>

#include "common/strings.h"
#include "exec/evaluator.h"
#include "plan/binder.h"
#include "sql/parser.h"

namespace hana::esp {

namespace {

/// Splits "expr AS alias" (last top-level AS, case-insensitive).
void SplitAlias(const std::string& text, std::string* expr,
                std::string* alias) {
  std::string upper = ToUpper(text);
  size_t depth = 0;
  size_t pos = std::string::npos;
  for (size_t i = 0; i + 4 <= upper.size(); ++i) {
    if (upper[i] == '(') ++depth;
    if (upper[i] == ')') --depth;
    if (depth == 0 && upper.compare(i, 4, " AS ") == 0) pos = i;
  }
  if (pos == std::string::npos) {
    *expr = Trim(text);
    *alias = "";
  } else {
    *expr = Trim(text.substr(0, pos));
    *alias = Trim(text.substr(pos + 4));
  }
}

Result<plan::BoundExprPtr> BindText(const std::string& text,
                                    const Schema& schema) {
  HANA_ASSIGN_OR_RETURN(sql::ExprPtr ast, sql::ParseExpression(text));
  return plan::BindScalarExpr(*ast, schema);
}

struct AggAccum {
  int64_t count = 0;
  double sum_d = 0.0;
  int64_t sum_i = 0;
  bool any = false;
  Value min_v;
  Value max_v;
  std::unordered_set<Value, storage::ValueHash> distinct;
};

Status UpdateAccum(const AggSpec& spec, const std::vector<Value>& row,
                   AggAccum* acc) {
  if (spec.kind == plan::AggKind::kCountStar) {
    ++acc->count;
    return Status::OK();
  }
  HANA_ASSIGN_OR_RETURN(Value v, exec::EvalExprRow(*spec.arg, row));
  if (v.is_null()) return Status::OK();
  if (spec.distinct && !acc->distinct.insert(v).second) return Status::OK();
  acc->any = true;
  switch (spec.kind) {
    case plan::AggKind::kCount:
      ++acc->count;
      break;
    case plan::AggKind::kSum:
    case plan::AggKind::kAvg:
      ++acc->count;
      acc->sum_d += v.AsDouble();
      acc->sum_i += v.AsInt();
      break;
    case plan::AggKind::kMin:
      if (acc->min_v.is_null() || v.Compare(acc->min_v) < 0) acc->min_v = v;
      break;
    case plan::AggKind::kMax:
      if (acc->max_v.is_null() || v.Compare(acc->max_v) > 0) acc->max_v = v;
      break;
    default:
      break;
  }
  return Status::OK();
}

Value FinalizeAccum(const AggSpec& spec, DataType type, const AggAccum& acc) {
  switch (spec.kind) {
    case plan::AggKind::kCountStar:
    case plan::AggKind::kCount:
      return Value::Int(acc.count);
    case plan::AggKind::kSum:
      if (!acc.any) return Value::Null();
      return type == DataType::kDouble ? Value::Double(acc.sum_d)
                                       : Value::Int(acc.sum_i);
    case plan::AggKind::kAvg:
      if (!acc.any || acc.count == 0) return Value::Null();
      return Value::Double(acc.sum_d / static_cast<double>(acc.count));
    case plan::AggKind::kMin:
      return acc.min_v;
    case plan::AggKind::kMax:
      return acc.max_v;
  }
  return Value::Null();
}

}  // namespace

// ---------------------------------------------------------------------
// ContinuousQuery
// ---------------------------------------------------------------------

Result<Event> ContinuousQuery::ApplyRowStages(const Event& event,
                                              bool* keep) const {
  *keep = true;
  if (filter_ != nullptr) {
    HANA_ASSIGN_OR_RETURN(Value v, exec::EvalExprRow(*filter_, event.values));
    if (v.is_null() || !exec::IsTruthy(v)) {
      *keep = false;
      return event;
    }
  }
  Event current = event;
  for (const Lookup& lookup : lookups_) {
    HANA_ASSIGN_OR_RETURN(Value key,
                          exec::EvalExprRow(*lookup.key, current.values));
    auto it = lookup.table.find(key);
    if (it != lookup.table.end()) {
      current.values.insert(current.values.end(), it->second.begin(),
                            it->second.end());
    } else {
      current.values.insert(current.values.end(), lookup.payload_width,
                            Value::Null());
    }
  }
  if (has_projection_) {
    std::vector<Value> projected;
    projected.reserve(projection_.size());
    for (const auto& e : projection_) {
      HANA_ASSIGN_OR_RETURN(Value v, exec::EvalExprRow(*e, current.values));
      projected.push_back(std::move(v));
    }
    current.values = std::move(projected);
  }
  return current;
}

void ContinuousQuery::Emit(const Event& event) {
  engine_->mu_.AssertHeld();
  ++events_out_;
  for (const EventSink& sink : sinks_) sink(event);
  if (!target_stream_.empty()) {
    // Re-entrant forward into a sibling stream of the same engine: the
    // lock is already held, so go through PublishLocked (re-acquiring
    // mu_ here would self-deadlock, and the runtime validator aborts on
    // exactly that).
    // lint: IgnoreStatus allowed — a derived-stream forward can fail
    // (dropped stream, schema drift) without poisoning the source
    // stream's publish; ESP semantics drop the event.
    IgnoreStatus(
        engine_->PublishLocked(target_stream_, event.timestamp_ms,
                               event.values));
  }
}

void ContinuousQuery::CloseWindow(int64_t boundary_ms) {
  engine_->mu_.AssertHeld();
  if (window_events_.empty()) return;
  if (!has_aggregation_) {
    window_events_.clear();
    return;
  }
  // Group and aggregate retained events.
  std::map<std::vector<Value>, std::vector<AggAccum>> groups;
  for (const Event& event : window_events_) {
    std::vector<Value> key;
    key.reserve(group_by_.size());
    bool ok = true;
    for (const auto& g : group_by_) {
      Result<Value> v = exec::EvalExprRow(*g, event.values);
      if (!v.ok()) {
        ok = false;
        break;
      }
      key.push_back(std::move(*v));
    }
    if (!ok) continue;
    auto [it, inserted] =
        groups.try_emplace(std::move(key),
                           std::vector<AggAccum>(aggregates_.size()));
    for (size_t a = 0; a < aggregates_.size(); ++a) {
      // lint: IgnoreStatus allowed — the update only fails when the
      // aggregate argument fails to evaluate for this row; aggregation
      // skips such rows, matching the group-key path above.
      IgnoreStatus(UpdateAccum(aggregates_[a], event.values, &it->second[a]));
    }
  }
  for (const auto& [key, accs] : groups) {
    Event out;
    out.timestamp_ms = boundary_ms;
    out.values = key;
    for (size_t a = 0; a < aggregates_.size(); ++a) {
      DataType type =
          output_schema_->column(group_by_.size() + a).type;
      out.values.push_back(FinalizeAccum(aggregates_[a], type, accs[a]));
    }
    Emit(out);
  }
  window_events_.clear();
}

void ContinuousQuery::Process(const Event& event) {
  engine_->mu_.AssertHeld();
  ++events_in_;
  bool keep = true;
  Result<Event> staged = ApplyRowStages(event, &keep);
  if (!staged.ok() || !keep) return;
  const Event& row = *staged;

  if (has_pattern_) {
    // Advance partial matches (oldest first) and start new ones.
    std::vector<std::pair<int64_t, size_t>> next;
    bool emitted = false;
    for (auto [start_ts, step] : pattern_progress_) {
      if (row.timestamp_ms - start_ts > pattern_.within_ms) continue;
      Result<Value> hit = exec::EvalExprRow(*pattern_.steps[step], row.values);
      if (hit.ok() && !hit->is_null() && exec::IsTruthy(*hit)) {
        if (step + 1 == pattern_.steps.size()) {
          if (!emitted) {
            Emit(row);
            emitted = true;
          }
          continue;  // Match consumed.
        }
        next.emplace_back(start_ts, step + 1);
      } else {
        next.emplace_back(start_ts, step);  // Wait for the step.
      }
    }
    Result<Value> first = exec::EvalExprRow(*pattern_.steps[0], row.values);
    if (first.ok() && !first->is_null() && exec::IsTruthy(*first)) {
      if (pattern_.steps.size() == 1) {
        if (!emitted) Emit(row);
      } else {
        next.emplace_back(row.timestamp_ms, 1);
      }
    }
    pattern_progress_ = std::move(next);
    return;
  }

  switch (window_.kind) {
    case WindowSpec::Kind::kNone:
      if (has_aggregation_) {
        // Aggregation without a window degenerates to per-event output.
        window_events_.push_back(row);
        CloseWindow(row.timestamp_ms);
      } else {
        Emit(row);
      }
      return;
    case WindowSpec::Kind::kTumblingCount:
      window_events_.push_back(row);
      if (window_events_.size() >= window_.count) {
        CloseWindow(row.timestamp_ms);
      }
      return;
    case WindowSpec::Kind::kTumblingTime: {
      int64_t bucket = row.timestamp_ms / window_.millis;
      if (window_start_ms_ >= 0 && bucket != window_start_ms_) {
        CloseWindow(window_start_ms_ * window_.millis + window_.millis);
      }
      window_start_ms_ = bucket;
      window_events_.push_back(row);
      return;
    }
    case WindowSpec::Kind::kSlidingTime: {
      window_events_.push_back(row);
      while (!window_events_.empty() &&
             row.timestamp_ms - window_events_.front().timestamp_ms >
                 window_.millis) {
        window_events_.pop_front();
      }
      if (has_aggregation_) {
        // Emit the aggregate of the current window without clearing it.
        std::deque<Event> saved = window_events_;
        CloseWindow(row.timestamp_ms);
        window_events_ = std::move(saved);
      } else {
        Emit(row);
      }
      return;
    }
  }
}

void ContinuousQuery::Flush() {
  MutexLock lock(engine_->mu_);
  FlushLocked();
}

void ContinuousQuery::FlushLocked() {
  engine_->mu_.AssertHeld();
  if (window_.kind == WindowSpec::Kind::kTumblingTime &&
      window_start_ms_ >= 0) {
    CloseWindow(window_start_ms_ * window_.millis + window_.millis);
    window_start_ms_ = -1;
    return;
  }
  if (!window_events_.empty()) {
    CloseWindow(window_events_.back().timestamp_ms);
  }
}

storage::Table ContinuousQuery::WindowContents() const {
  // The retained (pre-aggregation) rows of the current window.
  MutexLock lock(engine_->mu_);
  storage::Table table(row_schema_);
  for (const Event& event : window_events_) table.AppendRow(event.values);
  return table;
}

// ---------------------------------------------------------------------
// CqBuilder
// ---------------------------------------------------------------------

CqBuilder::CqBuilder(EspEngine* engine, const std::string& source_stream)
    : engine_(engine), source_(source_stream) {
  query_ = std::make_unique<ContinuousQuery>();
  query_->engine_ = engine;
}

CqBuilder& CqBuilder::Where(const std::string& predicate) {
  pending_where_ = predicate;
  return *this;
}

CqBuilder& CqBuilder::Select(const std::vector<std::string>& exprs) {
  pending_select_ = exprs;
  return *this;
}

CqBuilder& CqBuilder::LookupJoin(const storage::Table& dimension,
                                 const std::string& stream_key_expr,
                                 const std::string& table_key_column) {
  pending_lookups_.push_back({&dimension, stream_key_expr, table_key_column});
  return *this;
}

CqBuilder& CqBuilder::KeepRows(size_t rows) {
  query_->window_.kind = WindowSpec::Kind::kTumblingCount;
  query_->window_.count = rows;
  return *this;
}

CqBuilder& CqBuilder::KeepMillis(int64_t millis) {
  query_->window_.kind = WindowSpec::Kind::kTumblingTime;
  query_->window_.millis = millis;
  return *this;
}

CqBuilder& CqBuilder::GroupBy(const std::vector<std::string>& keys,
                              const std::vector<std::string>& aggregates) {
  pending_group_keys_ = keys;
  pending_aggs_ = aggregates;
  query_->has_aggregation_ = true;
  return *this;
}

CqBuilder& CqBuilder::MatchPattern(
    const std::vector<std::string>& step_predicates, int64_t within_ms) {
  pending_pattern_ = step_predicates;
  pattern_within_ms_ = within_ms;
  return *this;
}

CqBuilder& CqBuilder::IntoCallback(EventSink sink) {
  query_->sinks_.push_back(std::move(sink));
  return *this;
}

CqBuilder& CqBuilder::IntoTable(storage::ColumnTable* table) {
  query_->sinks_.push_back([table](const Event& event) {
    // lint: IgnoreStatus allowed — a sink runs fire-and-forget inside
    // event dispatch; a malformed row is dropped rather than failing
    // the publish that produced it.
    IgnoreStatus(table->AppendRow(event.values));
  });
  return *this;
}

CqBuilder& CqBuilder::IntoHdfs(hadoop::Hdfs* hdfs, const std::string& path) {
  query_->sinks_.push_back([hdfs, path](const Event& event) {
    std::vector<std::string> fields;
    fields.push_back(std::to_string(event.timestamp_ms));
    for (const Value& v : event.values) fields.push_back(v.ToString());
    // lint: IgnoreStatus allowed — raw archival is best-effort; an HDFS
    // write failure must not fail the publish being archived.
    IgnoreStatus(hdfs->AppendLines(path, {Join(fields, "\t")}));
  });
  return *this;
}

CqBuilder& CqBuilder::IntoStream(const std::string& derived_stream) {
  query_->target_stream_ = derived_stream;
  return *this;
}

Result<ContinuousQuery*> CqBuilder::Finish(const std::string& name) {
  HANA_ASSIGN_OR_RETURN(std::shared_ptr<Schema> input_schema,
                        engine_->StreamSchema(source_));
  query_->name_ = name;
  query_->input_schema_ = input_schema;

  if (!pending_where_.empty()) {
    HANA_ASSIGN_OR_RETURN(query_->filter_,
                          BindText(pending_where_, *input_schema));
  }

  // Stage schema: input columns plus lookup payloads.
  auto stage_schema = std::make_shared<Schema>(input_schema->columns());
  for (const PendingLookup& pending : pending_lookups_) {
    ContinuousQuery::Lookup lookup;
    HANA_ASSIGN_OR_RETURN(lookup.key,
                          BindText(pending.stream_key, *stage_schema));
    HANA_ASSIGN_OR_RETURN(
        size_t key_col,
        pending.dimension->schema()->ColumnIndex(pending.table_key));
    for (const auto& row : pending.dimension->rows()) {
      std::vector<Value> payload;
      for (size_t c = 0; c < row.size(); ++c) {
        if (c != key_col) payload.push_back(row[c]);
      }
      lookup.table[row[key_col]] = std::move(payload);
    }
    lookup.payload_width = pending.dimension->schema()->num_columns() - 1;
    for (size_t c = 0; c < pending.dimension->schema()->num_columns(); ++c) {
      if (c != key_col) {
        stage_schema->AddColumn(pending.dimension->schema()->column(c));
      }
    }
    query_->lookups_.push_back(std::move(lookup));
  }

  std::shared_ptr<Schema> row_schema = stage_schema;
  if (!pending_select_.empty()) {
    query_->has_projection_ = true;
    auto projected = std::make_shared<Schema>();
    for (const std::string& item : pending_select_) {
      std::string text, alias;
      SplitAlias(item, &text, &alias);
      HANA_ASSIGN_OR_RETURN(plan::BoundExprPtr bound,
                            BindText(text, *stage_schema));
      projected->AddColumn(
          {alias.empty() ? text : alias, bound->type, true});
      query_->projection_.push_back(std::move(bound));
    }
    row_schema = projected;
  }
  query_->row_schema_ = row_schema;
  query_->output_schema_ = row_schema;

  if (query_->has_aggregation_) {
    auto agg_schema = std::make_shared<Schema>();
    for (const std::string& key : pending_group_keys_) {
      HANA_ASSIGN_OR_RETURN(plan::BoundExprPtr bound,
                            BindText(key, *row_schema));
      agg_schema->AddColumn({key, bound->type, true});
      query_->group_by_.push_back(std::move(bound));
    }
    for (const std::string& item : pending_aggs_) {
      std::string text, alias;
      SplitAlias(item, &text, &alias);
      HANA_ASSIGN_OR_RETURN(sql::ExprPtr ast, sql::ParseExpression(text));
      if (ast->kind != sql::ExprKind::kFunction) {
        return Status::InvalidArgument("not an aggregate: " + item);
      }
      AggSpec spec;
      spec.alias = alias.empty() ? text : alias;
      spec.distinct = ast->distinct;
      DataType type = DataType::kDouble;
      const std::string& fn = ast->function_name;
      bool star = ast->args.size() == 1 &&
                  ast->args[0]->kind == sql::ExprKind::kStar;
      if (fn == "COUNT" && (ast->args.empty() || star)) {
        spec.kind = plan::AggKind::kCountStar;
        type = DataType::kInt64;
      } else {
        if (ast->args.size() != 1) {
          return Status::InvalidArgument("aggregate arity: " + item);
        }
        HANA_ASSIGN_OR_RETURN(spec.arg,
                              plan::BindScalarExpr(*ast->args[0],
                                                   *row_schema));
        if (fn == "COUNT") {
          spec.kind = plan::AggKind::kCount;
          type = DataType::kInt64;
        } else if (fn == "SUM") {
          spec.kind = plan::AggKind::kSum;
          type = spec.arg->type == DataType::kDouble ? DataType::kDouble
                                                     : DataType::kInt64;
        } else if (fn == "AVG") {
          spec.kind = plan::AggKind::kAvg;
        } else if (fn == "MIN") {
          spec.kind = plan::AggKind::kMin;
          type = spec.arg->type;
        } else if (fn == "MAX") {
          spec.kind = plan::AggKind::kMax;
          type = spec.arg->type;
        } else {
          return Status::InvalidArgument("unknown aggregate: " + fn);
        }
      }
      agg_schema->AddColumn({spec.alias, type, true});
      query_->aggregates_.push_back(std::move(spec));
    }
    query_->output_schema_ = agg_schema;
  }

  if (!pending_pattern_.empty()) {
    query_->has_pattern_ = true;
    query_->pattern_.within_ms = pattern_within_ms_;
    for (const std::string& step : pending_pattern_) {
      HANA_ASSIGN_OR_RETURN(plan::BoundExprPtr bound,
                            BindText(step, *row_schema));
      query_->pattern_.steps.push_back(std::move(bound));
    }
    query_->output_schema_ = row_schema;
  }

  // Registration publishes the query to concurrent Publish/FlushAll
  // callers; only this tail needs the engine lock — everything above
  // touched builder-private state.
  ContinuousQuery* raw = query_.get();
  MutexLock lock(engine_->mu_);
  auto stream_it = engine_->streams_.find(ToUpper(source_));
  if (stream_it == engine_->streams_.end()) {
    return Status::NotFound("stream not found: " + source_);
  }
  stream_it->second.queries.push_back(raw);
  engine_->queries_.push_back(std::move(query_));
  return raw;
}

// ---------------------------------------------------------------------
// EspEngine
// ---------------------------------------------------------------------

EspEngine::~EspEngine() = default;

Status EspEngine::CreateStream(const std::string& name,
                               std::shared_ptr<Schema> schema) {
  MutexLock lock(mu_);
  std::string key = ToUpper(name);
  if (streams_.count(key) > 0) {
    return Status::AlreadyExists("stream exists: " + name);
  }
  streams_[key] = StreamState{std::move(schema), {}, INT64_MIN};
  return Status::OK();
}

Result<std::shared_ptr<Schema>> EspEngine::StreamSchema(
    const std::string& name) const {
  MutexLock lock(mu_);
  auto it = streams_.find(ToUpper(name));
  if (it == streams_.end()) {
    return Status::NotFound("stream not found: " + name);
  }
  return it->second.schema;
}

Status EspEngine::Publish(const std::string& stream, int64_t timestamp_ms,
                          std::vector<Value> values) {
  MutexLock lock(mu_);
  return PublishLocked(stream, timestamp_ms, std::move(values));
}

Status EspEngine::PublishLocked(const std::string& stream,
                                int64_t timestamp_ms,
                                std::vector<Value> values) {
  auto it = streams_.find(ToUpper(stream));
  if (it == streams_.end()) {
    return Status::NotFound("stream not found: " + stream);
  }
  StreamState& state = it->second;
  if (values.size() != state.schema->num_columns()) {
    return Status::InvalidArgument("event arity mismatch on " + stream);
  }
  if (timestamp_ms < state.last_timestamp_ms) {
    return Status::InvalidArgument("out-of-order event on " + stream);
  }
  state.last_timestamp_ms = timestamp_ms;
  ++total_events_;
  Event event{timestamp_ms, std::move(values)};
  for (ContinuousQuery* query : state.queries) query->Process(event);
  return Status::OK();
}

void EspEngine::FlushAll() {
  MutexLock lock(mu_);
  for (auto& query : queries_) query->FlushLocked();
}

Result<ContinuousQuery*> EspEngine::GetQuery(const std::string& name) const {
  MutexLock lock(mu_);
  for (const auto& query : queries_) {
    if (EqualsIgnoreCase(query->name(), name)) return query.get();
  }
  return Status::NotFound("continuous query not found: " + name);
}

}  // namespace hana::esp
