#include "tpch/dbgen.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "common/util.h"

namespace hana::tpch {

namespace {

constexpr const char* kRegions[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                                    "MIDDLE EAST"};
constexpr const char* kNations[] = {
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
    "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
    "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"};
// Region of each nation (official mapping).
constexpr int kNationRegion[] = {0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2,
                                 4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1};
constexpr const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                                     "MACHINERY", "HOUSEHOLD"};
constexpr const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                                       "4-NOT SPECIFIED", "5-LOW"};
constexpr const char* kShipModes[] = {"REG AIR", "AIR",     "RAIL", "SHIP",
                                      "TRUCK",   "MAIL",    "FOB"};
constexpr const char* kInstructs[] = {"DELIVER IN PERSON", "COLLECT COD",
                                      "NONE", "TAKE BACK RETURN"};
constexpr const char* kTypeSyllable1[] = {"STANDARD", "SMALL", "MEDIUM",
                                          "LARGE", "ECONOMY", "PROMO"};
constexpr const char* kTypeSyllable2[] = {"ANODIZED", "BURNISHED", "PLATED",
                                          "POLISHED", "BRUSHED"};
constexpr const char* kTypeSyllable3[] = {"TIN", "NICKEL", "BRASS", "STEEL",
                                          "COPPER"};
constexpr const char* kContainerSyllable1[] = {"SM", "LG", "MED", "JUMBO",
                                               "WRAP"};
constexpr const char* kContainerSyllable2[] = {"CASE", "BOX", "BAG", "JAR",
                                               "PKG", "PACK", "CAN", "DRUM"};
constexpr const char* kWords[] = {
    "furiously", "quick",   "pending", "final",  "ironic",  "express",
    "bold",      "regular", "silent",  "blithe", "careful", "dogged"};

int64_t Date(int y, int m, int d) { return DaysFromCivil(y, m, d); }

std::string Comment(Rng* rng, int words) {
  std::vector<std::string> parts;
  for (int i = 0; i < words; ++i) {
    parts.push_back(kWords[rng->Uniform(0, 11)]);
  }
  return Join(parts, " ");
}

std::string Phone(Rng* rng, int64_t nation) {
  return StrFormat("%d-%03d-%03d-%04d", static_cast<int>(10 + nation),
                   static_cast<int>(rng->Uniform(100, 999)),
                   static_cast<int>(rng->Uniform(100, 999)),
                   static_cast<int>(rng->Uniform(1000, 9999)));
}

}  // namespace

std::shared_ptr<Schema> TpchSchema(const std::string& table) {
  using T = DataType;
  std::string t = ToLower(table);
  std::vector<ColumnDef> cols;
  if (t == "region") {
    cols = {{"r_regionkey", T::kInt64, false},
            {"r_name", T::kString, false},
            {"r_comment", T::kString, true}};
  } else if (t == "nation") {
    cols = {{"n_nationkey", T::kInt64, false},
            {"n_name", T::kString, false},
            {"n_regionkey", T::kInt64, false},
            {"n_comment", T::kString, true}};
  } else if (t == "supplier") {
    cols = {{"s_suppkey", T::kInt64, false},
            {"s_name", T::kString, false},
            {"s_address", T::kString, false},
            {"s_nationkey", T::kInt64, false},
            {"s_phone", T::kString, false},
            {"s_acctbal", T::kDouble, false},
            {"s_comment", T::kString, true}};
  } else if (t == "customer") {
    cols = {{"c_custkey", T::kInt64, false},
            {"c_name", T::kString, false},
            {"c_address", T::kString, false},
            {"c_nationkey", T::kInt64, false},
            {"c_phone", T::kString, false},
            {"c_acctbal", T::kDouble, false},
            {"c_mktsegment", T::kString, false},
            {"c_comment", T::kString, true}};
  } else if (t == "part" || t == "part_local") {
    cols = {{"p_partkey", T::kInt64, false},
            {"p_name", T::kString, false},
            {"p_mfgr", T::kString, false},
            {"p_brand", T::kString, false},
            {"p_type", T::kString, false},
            {"p_size", T::kInt64, false},
            {"p_container", T::kString, false},
            {"p_retailprice", T::kDouble, false},
            {"p_comment", T::kString, true}};
  } else if (t == "partsupp") {
    cols = {{"ps_partkey", T::kInt64, false},
            {"ps_suppkey", T::kInt64, false},
            {"ps_availqty", T::kInt64, false},
            {"ps_supplycost", T::kDouble, false},
            {"ps_comment", T::kString, true}};
  } else if (t == "orders") {
    cols = {{"o_orderkey", T::kInt64, false},
            {"o_custkey", T::kInt64, false},
            {"o_orderstatus", T::kString, false},
            {"o_totalprice", T::kDouble, false},
            {"o_orderdate", T::kDate, false},
            {"o_orderpriority", T::kString, false},
            {"o_clerk", T::kString, false},
            {"o_shippriority", T::kInt64, false},
            {"o_comment", T::kString, true}};
  } else if (t == "lineitem") {
    cols = {{"l_orderkey", T::kInt64, false},
            {"l_partkey", T::kInt64, false},
            {"l_suppkey", T::kInt64, false},
            {"l_linenumber", T::kInt64, false},
            {"l_quantity", T::kDouble, false},
            {"l_extendedprice", T::kDouble, false},
            {"l_discount", T::kDouble, false},
            {"l_tax", T::kDouble, false},
            {"l_returnflag", T::kString, false},
            {"l_linestatus", T::kString, false},
            {"l_shipdate", T::kDate, false},
            {"l_commitdate", T::kDate, false},
            {"l_receiptdate", T::kDate, false},
            {"l_shipinstruct", T::kString, false},
            {"l_shipmode", T::kString, false},
            {"l_comment", T::kString, true}};
  }
  return std::make_shared<Schema>(cols);
}

std::vector<std::string> TpchTableNames() {
  return {"region",   "nation", "supplier", "customer",
          "part",     "partsupp", "orders", "lineitem"};
}

TpchData Generate(double scale_factor, uint64_t seed) {
  Rng rng(seed);
  TpchData data;
  auto scaled = [&](int64_t base) {
    return std::max<int64_t>(1, static_cast<int64_t>(
                                    std::llround(base * scale_factor)));
  };
  const int64_t num_supplier = scaled(10000);
  const int64_t num_customer = scaled(150000);
  const int64_t num_part = scaled(200000);
  const int64_t num_orders = scaled(1500000);

  for (int64_t r = 0; r < 5; ++r) {
    data.region.push_back({Value::Int(r), Value::String(kRegions[r]),
                           Value::String(Comment(&rng, 4))});
  }
  for (int64_t n = 0; n < 25; ++n) {
    data.nation.push_back({Value::Int(n), Value::String(kNations[n]),
                           Value::Int(kNationRegion[n]),
                           Value::String(Comment(&rng, 4))});
  }
  for (int64_t s = 1; s <= num_supplier; ++s) {
    int64_t nation = rng.Uniform(0, 24);
    // ~1% of suppliers carry the Q16 complaints marker.
    std::string comment = Comment(&rng, 5);
    if (rng.Uniform(0, 99) == 0) {
      comment += " Customer unhappy Complaints filed";
    }
    data.supplier.push_back(
        {Value::Int(s), Value::String(StrFormat("Supplier#%09lld",
                                                static_cast<long long>(s))),
         Value::String(Comment(&rng, 2)), Value::Int(nation),
         Value::String(Phone(&rng, nation)),
         Value::Double(rng.Uniform(-99999, 999999) / 100.0),
         Value::String(comment)});
  }
  for (int64_t c = 1; c <= num_customer; ++c) {
    int64_t nation = rng.Uniform(0, 24);
    data.customer.push_back(
        {Value::Int(c), Value::String(StrFormat("Customer#%09lld",
                                                static_cast<long long>(c))),
         Value::String(Comment(&rng, 2)), Value::Int(nation),
         Value::String(Phone(&rng, nation)),
         Value::Double(rng.Uniform(-99999, 999999) / 100.0),
         Value::String(kSegments[rng.Uniform(0, 4)]),
         Value::String(Comment(&rng, 5))});
  }
  for (int64_t p = 1; p <= num_part; ++p) {
    std::string type = std::string(kTypeSyllable1[rng.Uniform(0, 5)]) + " " +
                       kTypeSyllable2[rng.Uniform(0, 4)] + " " +
                       kTypeSyllable3[rng.Uniform(0, 4)];
    std::string container =
        std::string(kContainerSyllable1[rng.Uniform(0, 4)]) + " " +
        kContainerSyllable2[rng.Uniform(0, 7)];
    int64_t brand_mfgr = rng.Uniform(1, 5);
    int64_t brand_minor = rng.Uniform(1, 5);
    data.part.push_back(
        {Value::Int(p),
         Value::String(Comment(&rng, 3)),
         Value::String(StrFormat("Manufacturer#%lld",
                                 static_cast<long long>(brand_mfgr))),
         Value::String(StrFormat("Brand#%lld%lld",
                                 static_cast<long long>(brand_mfgr),
                                 static_cast<long long>(brand_minor))),
         Value::String(type), Value::Int(rng.Uniform(1, 50)),
         Value::String(container),
         Value::Double(900.0 + static_cast<double>(p % 1000)),
         Value::String(Comment(&rng, 3))});
  }
  for (int64_t p = 1; p <= num_part; ++p) {
    // Four suppliers per part (official ratio).
    for (int64_t i = 0; i < 4; ++i) {
      int64_t supp =
          (p + i * (num_supplier / 4 + 1)) % num_supplier + 1;
      data.partsupp.push_back(
          {Value::Int(p), Value::Int(supp),
           Value::Int(rng.Uniform(1, 9999)),
           Value::Double(rng.Uniform(100, 100000) / 100.0),
           Value::String(Comment(&rng, 6))});
    }
  }
  const int64_t start_date = Date(1992, 1, 1);
  const int64_t end_date = Date(1998, 8, 2);
  const int64_t current_date = Date(1995, 6, 17);
  for (int64_t o = 1; o <= num_orders; ++o) {
    int64_t cust = rng.Uniform(1, num_customer);
    int64_t orderdate = rng.Uniform(start_date, end_date - 151);
    std::string comment = Comment(&rng, 5);
    // ~1.2% of orders mention special requests (drives Q13's shape).
    if (rng.Uniform(0, 79) == 0) {
      comment += " special packages requests";
    }
    int64_t num_lines = rng.Uniform(1, 7);
    double total = 0;
    int placed = 0;
    for (int64_t l = 1; l <= num_lines; ++l) {
      int64_t part = rng.Uniform(1, num_part);
      int64_t supp = (part + rng.Uniform(0, 3) * (num_supplier / 4 + 1)) %
                         num_supplier + 1;
      double quantity = static_cast<double>(rng.Uniform(1, 50));
      double price = (900.0 + static_cast<double>(part % 1000)) * quantity /
                     10.0;
      double discount = static_cast<double>(rng.Uniform(0, 10)) / 100.0;
      double tax = static_cast<double>(rng.Uniform(0, 8)) / 100.0;
      int64_t shipdate = orderdate + rng.Uniform(1, 121);
      int64_t commitdate = orderdate + rng.Uniform(30, 90);
      int64_t receiptdate = shipdate + rng.Uniform(1, 30);
      const char* returnflag =
          receiptdate <= current_date ? (rng.Uniform(0, 1) ? "R" : "A") : "N";
      const char* linestatus = shipdate > current_date ? "O" : "F";
      data.lineitem.push_back(
          {Value::Int(o), Value::Int(part), Value::Int(supp), Value::Int(l),
           Value::Double(quantity), Value::Double(price),
           Value::Double(discount), Value::Double(tax),
           Value::String(returnflag), Value::String(linestatus),
           Value::Date(shipdate), Value::Date(commitdate),
           Value::Date(receiptdate),
           Value::String(kInstructs[rng.Uniform(0, 3)]),
           Value::String(kShipModes[rng.Uniform(0, 6)]),
           Value::String(Comment(&rng, 3))});
      total += price * (1 + tax) * (1 - discount);
      ++placed;
    }
    const char* status = rng.Uniform(0, 2) == 0 ? "F"
                         : rng.Uniform(0, 1) ? "O"
                                             : "P";
    data.orders.push_back(
        {Value::Int(o), Value::Int(cust), Value::String(status),
         Value::Double(total), Value::Date(orderdate),
         Value::String(kPriorities[rng.Uniform(0, 4)]),
         Value::String(StrFormat("Clerk#%09d",
                                 static_cast<int>(rng.Uniform(1, 1000)))),
         Value::Int(0), Value::String(comment)});
    (void)placed;
  }
  return data;
}

const std::vector<std::vector<Value>>* TableRows(const TpchData& data,
                                                 const std::string& table) {
  std::string t = ToLower(table);
  if (t == "region") return &data.region;
  if (t == "nation") return &data.nation;
  if (t == "supplier") return &data.supplier;
  if (t == "customer") return &data.customer;
  if (t == "part" || t == "part_local") return &data.part;
  if (t == "partsupp") return &data.partsupp;
  if (t == "orders") return &data.orders;
  if (t == "lineitem") return &data.lineitem;
  return nullptr;
}

}  // namespace hana::tpch
