#ifndef HANA_TPCH_QUERIES_H_
#define HANA_TPCH_QUERIES_H_

#include <string>
#include <vector>

namespace hana::tpch {

/// The twelve TPC-H queries of the paper's remote-materialization
/// experiment: Q1, Q3, Q4, Q5, Q6, Q10, Q12, Q13, Q14, Q16, Q18, Q19.
/// The texts follow the paper's "slightly modified versions": TOP and
/// ORDER BY clauses removed, interval arithmetic replaced by literal
/// dates. `part_table` names the relation used for PART (the paper
/// keeps PART local only for Q14 and Q19).
std::string QueryText(int query, const std::string& part_table = "part");

/// The query numbers in the order Figure 14 reports them.
std::vector<int> BenchmarkQueries();

/// True when the paper marks the query with '*' (modified form).
bool IsModifiedQuery(int query);

}  // namespace hana::tpch

#endif  // HANA_TPCH_QUERIES_H_
