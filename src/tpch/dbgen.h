#ifndef HANA_TPCH_DBGEN_H_
#define HANA_TPCH_DBGEN_H_

#include <memory>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/value.h"

namespace hana::tpch {

/// All eight TPC-H relations, generated in memory.
struct TpchData {
  std::vector<std::vector<Value>> region;
  std::vector<std::vector<Value>> nation;
  std::vector<std::vector<Value>> supplier;
  std::vector<std::vector<Value>> customer;
  std::vector<std::vector<Value>> part;
  std::vector<std::vector<Value>> partsupp;
  std::vector<std::vector<Value>> orders;
  std::vector<std::vector<Value>> lineitem;
};

/// Schema of a TPC-H table ("lineitem", "orders", ...). Dates are typed
/// DATE, monetary amounts DOUBLE, keys BIGINT.
std::shared_ptr<Schema> TpchSchema(const std::string& table);

/// Names of all eight tables in dependency order.
std::vector<std::string> TpchTableNames();

/// Deterministic scaled-down generator: row counts follow the official
/// ratios (supplier 10k/customer 150k/part 200k/partsupp 800k/orders
/// 1.5M/lineitem ~6M at SF 1), value distributions are uniform
/// approximations that preserve every predicate the 12 benchmark
/// queries rely on (PROMO part types, MAIL/SHIP ship modes, BUILDING
/// market segments, "special requests" order comments, ...).
TpchData Generate(double scale_factor, uint64_t seed = 19920701);

/// Rows of a table by name (pointer into `data`).
const std::vector<std::vector<Value>>* TableRows(const TpchData& data,
                                                 const std::string& table);

}  // namespace hana::tpch

#endif  // HANA_TPCH_DBGEN_H_
