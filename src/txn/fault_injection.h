#ifndef HANA_TXN_FAULT_INJECTION_H_
#define HANA_TXN_FAULT_INJECTION_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/sync.h"
#include "common/util.h"
#include "txn/two_phase.h"

namespace hana::txn {

/// The participant-side operations a fault can attach to.
enum class FaultOp { kPrepare, kCommit, kAbort };

const char* FaultOpName(FaultOp op);

/// One fired fault-layer event. The trace is the replayable record of a
/// schedule: Trace() returns events in a canonical order that does not
/// depend on thread interleaving, so two runs of the same seeded
/// schedule produce byte-identical traces.
struct FaultEvent {
  TxnId txn = 0;
  std::string participant;
  FaultOp op = FaultOp::kPrepare;
  std::string action;  // "fail", "latency", "hold", "release", "crash".

  bool operator<(const FaultEvent& other) const;
  bool operator==(const FaultEvent& other) const;
  std::string ToString() const;
};

/// Deterministic fault-injection layer for the two-phase commit path.
///
/// Participants call OnCall() at the top of Prepare/Commit/Abort (the
/// modeled resource-manager boundary — where a real system would cross
/// the network); the coordinator consults ConsumeCoordinatorCrash() at
/// its failpoints. Faults are armed per (participant, op):
///
///   * FailNext       — the next call returns an injected error (votes
///                      abort on prepare; infrastructure error on
///                      commit/abort). Armed N times.
///   * SetLatencyMs   — every call sleeps for the given wall-clock time
///                      before proceeding (commit-latency benchmarks).
///   * Hold           — the call blocks on a latch until Release(), or
///                      automatically once the armed arrival /
///                      completion count for (op, txn) is reached.
///                      Auto-release conditions are what make hang
///                      interleavings deterministic: "participant A
///                      hangs until B and C finished voting" replays
///                      identically regardless of thread scheduling.
///
/// Arrival/completion counters are kept per (op, txn), so holds in one
/// transaction never key off the progress of another.
///
/// Thread-safety: fully synchronized on mu_; OnCall blocks on cv_ while
/// held (the mutex is released during the wait). mu_ is a leaf lock —
/// OnCall never calls out while holding it.
class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Arms `times` injected failures for (participant, op).
  void FailNext(const std::string& participant, FaultOp op, int times = 1)
      EXCLUDES(mu_);

  /// Every (participant, op) call sleeps `ms` wall-clock milliseconds.
  /// 0 clears.
  void SetLatencyMs(const std::string& participant, FaultOp op, double ms)
      EXCLUDES(mu_);

  /// The next (participant, op) call blocks until released. A non-zero
  /// `release_after_arrivals` releases the latch automatically once
  /// that many calls of `op` (for the same transaction, the held one
  /// included) have *arrived*; `release_after_completions` once that
  /// many other calls have *returned*. Zero for both = manual Release.
  void Hold(const std::string& participant, FaultOp op,
            size_t release_after_arrivals = 0,
            size_t release_after_completions = 0) EXCLUDES(mu_);

  /// Releases a held (participant, op) latch.
  void Release(const std::string& participant, FaultOp op) EXCLUDES(mu_);

  /// Releases every latch and disarms all pending holds.
  void ReleaseAll() EXCLUDES(mu_);

  /// Arms a coordinator crash at `fp` (consumed by the coordinator on
  /// first passage, like SetFailpoint but owned by the fault schedule).
  void CrashCoordinatorAt(Failpoint fp) EXCLUDES(mu_);

  // --- Hook API (called by participants / the coordinator) ---

  /// Applies armed faults for (participant, op): blocks while held,
  /// sleeps armed latency, then returns the injected error if one is
  /// armed (consuming it) or OK.
  [[nodiscard]] Status OnCall(FaultOp op, const std::string& participant,
                              TxnId txn) EXCLUDES(mu_);

  /// True (once) if a coordinator crash is armed at `fp`.
  bool ConsumeCoordinatorCrash(Failpoint fp) EXCLUDES(mu_);

  /// Canonically ordered copy of all fired events (see FaultEvent).
  std::vector<FaultEvent> Trace() const EXCLUDES(mu_);
  std::string TraceToString() const EXCLUDES(mu_);
  void ClearTrace() EXCLUDES(mu_);

 private:
  struct Key {
    std::string participant;
    FaultOp op;
    bool operator<(const Key& other) const {
      if (participant != other.participant)
        return participant < other.participant;
      return static_cast<int>(op) < static_cast<int>(other.op);
    }
  };
  struct HoldSpec {
    bool held = false;
    size_t release_after_arrivals = 0;
    size_t release_after_completions = 0;
  };
  struct Counter {
    size_t arrivals = 0;
    size_t completions = 0;
  };

  void Record(TxnId txn, const std::string& participant, FaultOp op,
              const char* action) REQUIRES(mu_);

  /// Taken from coordinator (under txn.coordinator) and participant
  /// code paths; holds park on cv_ under it. Nothing is acquired
  /// while it is held.
  mutable Mutex mu_{"txn.fault_injector", lock_rank::kFaultInjector};
  CondVar cv_;
  std::map<Key, int> fail_counts_ GUARDED_BY(mu_);
  std::map<Key, double> latency_ms_ GUARDED_BY(mu_);
  std::map<Key, HoldSpec> holds_ GUARDED_BY(mu_);
  /// Per-(op, txn) arrival/completion counters driving auto-release.
  std::map<std::pair<int, TxnId>, Counter> counters_ GUARDED_BY(mu_);
  std::map<Failpoint, int> coordinator_crashes_ GUARDED_BY(mu_);
  std::vector<FaultEvent> trace_ GUARDED_BY(mu_);
};

/// The fault kinds a seeded schedule can assign to one participant of
/// one transaction.
enum class FaultKind {
  kNone,
  kFailPrepare,     // Votes abort.
  kFailCommit,      // Infrastructure error after global commit.
  kHangPrepare,     // Holds the vote until every vote has arrived.
  kPrepareLatency,  // Slow voter (latency_ms).
};

const char* FaultKindName(FaultKind kind);

/// The faults of one transaction in a schedule: one kind per
/// participant slot plus an optional coordinator failpoint.
struct TxnFaultPlan {
  std::vector<FaultKind> participant_faults;
  Failpoint failpoint = Failpoint::kNone;

  std::string ToString() const;
};

/// Seeded deterministic schedule generator: maps (seed, #txns,
/// #participants) to a fixed sequence of TxnFaultPlans via the
/// repository's SplitMix64 Rng. The same seed always yields the same
/// schedule on every platform, which combined with the injector's
/// canonical trace and the coordinator's enlist-order vote aggregation
/// makes every randomized run bit-identically replayable.
class FaultSchedule {
 public:
  /// Per-fault probabilities (the remainder is kNone).
  struct Mix {
    double fail_prepare = 0.15;
    double fail_commit = 0.05;
    double hang_prepare = 0.10;
    double prepare_latency = 0.15;
    double coordinator_crash = 0.10;  // Uniform over the 3 failpoints.
  };

  explicit FaultSchedule(uint64_t seed) : rng_(seed) {}

  std::vector<TxnFaultPlan> Generate(size_t num_txns, size_t num_participants,
                                     const Mix& mix);
  std::vector<TxnFaultPlan> Generate(size_t num_txns,
                                     size_t num_participants) {
    return Generate(num_txns, num_participants, Mix());
  }

  /// Arms one plan on an injector: translates each participant slot's
  /// FaultKind into the matching injector call (hangs auto-release once
  /// all `names.size()` votes arrived) and arms the coordinator crash.
  static void Arm(const TxnFaultPlan& plan,
                  const std::vector<std::string>& names,
                  double latency_ms, FaultInjector* injector);

 private:
  Rng rng_;
};

}  // namespace hana::txn

#endif  // HANA_TXN_FAULT_INJECTION_H_
