#ifndef HANA_TXN_PARTICIPANTS_H_
#define HANA_TXN_PARTICIPANTS_H_

#include <map>
#include <string>
#include <vector>

#include "extended/extended_store.h"
#include "storage/column_table.h"
#include "txn/two_phase.h"

namespace hana::txn {

/// Write staging for an in-memory column table. Inserts and deletes are
/// buffered per transaction and applied atomically at Commit. Abort (and
/// Abort of unknown transactions, as happens during presumed-abort
/// recovery) simply drops the staging.
class ColumnTableParticipant : public Participant {
 public:
  ColumnTableParticipant(std::string name, storage::ColumnTable* table)
      : name_(std::move(name)), table_(table) {}

  const std::string& name() const override { return name_; }

  [[nodiscard]] Status StageInsert(TxnId txn, std::vector<Value> row);
  [[nodiscard]] Status StageDelete(TxnId txn, size_t row_index);

  [[nodiscard]] Status Prepare(TxnId txn) override;
  [[nodiscard]] Status Commit(TxnId txn, uint64_t commit_id) override;
  [[nodiscard]] Status Abort(TxnId txn) override;

  /// Failure injection: the next Prepare votes abort.
  void FailNextPrepare() { fail_next_prepare_ = true; }

  /// Commit id of the last applied transaction (visibility watermark).
  uint64_t last_commit_id() const { return last_commit_id_; }

 private:
  struct Staged {
    std::vector<std::vector<Value>> inserts;
    std::vector<size_t> deletes;
    bool prepared = false;
  };

  std::string name_;
  storage::ColumnTable* table_;
  std::map<TxnId, Staged> staged_;
  bool fail_next_prepare_ = false;
  uint64_t last_commit_id_ = 0;
};

/// Write staging for an extended-storage table. Commit bulk-loads the
/// staged rows into the disk store — the transactional (non-direct)
/// write path of the extended storage.
class ExtendedTableParticipant : public Participant {
 public:
  ExtendedTableParticipant(std::string name, extended::ExtendedTable* table)
      : name_(std::move(name)), table_(table) {}

  const std::string& name() const override { return name_; }

  [[nodiscard]] Status StageInsert(TxnId txn, std::vector<Value> row);

  [[nodiscard]] Status Prepare(TxnId txn) override;
  [[nodiscard]] Status Commit(TxnId txn, uint64_t commit_id) override;
  [[nodiscard]] Status Abort(TxnId txn) override;

  void FailNextPrepare() { fail_next_prepare_ = true; }
  /// Simulates an unavailable extended store: every access errors until
  /// cleared (paper: "every access to a SAP HANA table may throw a
  /// runtime error" while the extended system is down).
  void SetUnavailable(bool value) { unavailable_ = value; }
  bool unavailable() const { return unavailable_; }

 private:
  struct Staged {
    std::vector<std::vector<Value>> inserts;
    bool prepared = false;
  };

  std::string name_;
  extended::ExtendedTable* table_;
  std::map<TxnId, Staged> staged_;
  bool fail_next_prepare_ = false;
  bool unavailable_ = false;
};

}  // namespace hana::txn

#endif  // HANA_TXN_PARTICIPANTS_H_
