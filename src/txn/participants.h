#ifndef HANA_TXN_PARTICIPANTS_H_
#define HANA_TXN_PARTICIPANTS_H_

#include <map>
#include <string>
#include <vector>

#include "common/sync.h"
#include "extended/extended_store.h"
#include "storage/column_table.h"
#include "txn/two_phase.h"

namespace hana::txn {

class FaultInjector;

/// Write staging for an in-memory column table. Inserts and deletes are
/// buffered per transaction and applied atomically at Commit. Abort (and
/// Abort of unknown transactions, as happens during presumed-abort
/// recovery) simply drops the staging.
///
/// With EnableMvcc(), Prepare additionally installs the buffered writes
/// as uncommitted versions (delta rows stamped with the writing
/// transaction, delete claims CASed onto the target rows — a claim held
/// by another live transaction votes abort: first-claimer-wins
/// write-write conflict detection). Commit then only stamps the
/// coordinator's commit timestamp, flipping the whole write set visible
/// atomically with respect to snapshot readers; Abort marks the rows
/// never-visible. The coordinator must allocate commit ids from the
/// same mvcc::VersionManager the table is wired to
/// (TwoPhaseCoordinator::SetVersionManager), and all transactions
/// touching one table must come from one coordinator — uncommitted
/// stamps carry the coordinator-scoped TxnId.
///
/// Prepare is idempotent: once a transaction is prepared, a repeated
/// Prepare (a Commit retry after a phase-2 infrastructure failure, or
/// the one-phase path re-driving) returns OK without re-validating or
/// consuming armed faults. All state is guarded by mu_ — the
/// coordinator calls participants concurrently from pool workers.
class ColumnTableParticipant : public Participant {
 public:
  ColumnTableParticipant(std::string name, storage::ColumnTable* table,
                         FaultInjector* injector = nullptr)
      : name_(std::move(name)), table_(table), injector_(injector) {}

  const std::string& name() const override { return name_; }

  [[nodiscard]] Status StageInsert(TxnId txn, std::vector<Value> row)
      EXCLUDES(mu_);
  [[nodiscard]] Status StageDelete(TxnId txn, size_t row_index) EXCLUDES(mu_);

  [[nodiscard]] Status Prepare(TxnId txn) override EXCLUDES(mu_);
  [[nodiscard]] Status Commit(TxnId txn, uint64_t commit_id) override
      EXCLUDES(mu_);
  [[nodiscard]] Status Abort(TxnId txn) override EXCLUDES(mu_);

  /// Failure injection: the next Prepare votes abort. (Predates the
  /// FaultInjector layer; kept for single-fault tests.)
  void FailNextPrepare() EXCLUDES(mu_) {
    MutexLock lock(mu_);
    fail_next_prepare_ = true;
  }

  /// Attaches the fault-injection layer; Prepare/Commit/Abort route
  /// through it at entry. Set before enlisting in concurrent commits.
  void SetFaultInjector(FaultInjector* injector) { injector_ = injector; }

  /// Switches to MVCC staging (see class comment). Set at wiring time,
  /// before the first transaction; commit ids passed to Commit() are
  /// then interpreted as version-manager commit timestamps.
  void EnableMvcc() EXCLUDES(mu_) {
    MutexLock lock(mu_);
    mvcc_ = true;
  }

  /// True while `txn` is staged and prepared (vote cast, not resolved).
  bool IsPrepared(TxnId txn) const EXCLUDES(mu_);

  /// Commit id of the last applied transaction (visibility watermark).
  uint64_t last_commit_id() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return last_commit_id_;
  }

 private:
  struct Staged {
    std::vector<std::vector<Value>> inserts;
    std::vector<size_t> deletes;
    bool prepared = false;
    // MVCC mode: set once Prepare installed the write set as
    // uncommitted versions (insert rows + delete claims below).
    bool applied = false;
    storage::ColumnTable::TxnAppendHandle insert_handle;
    std::vector<size_t> claimed_deletes;
  };

  /// Installs `s`'s write set as uncommitted versions; on a delete
  /// conflict, undoes what was claimed so far and returns the abort
  /// vote. MVCC mode only.
  [[nodiscard]] Status ApplyUncommitted(TxnId txn, Staged& s) REQUIRES(mu_);

  std::string name_;
  storage::ColumnTable* table_;
  FaultInjector* injector_;
  /// Guards staging and the watermark; held across the table apply in
  /// Commit so concurrent transactions touching the same table
  /// serialize their writes. Ordered before the table's storage locks
  /// (kTxnParticipant 40 < storage.state 65) and before the version
  /// manager (45), which the table's commit paths may take. Never held
  /// while calling the injector (which may block on a hold latch).
  mutable Mutex mu_{"txn.participant.column", lock_rank::kTxnParticipant};
  std::map<TxnId, Staged> staged_ GUARDED_BY(mu_);
  bool fail_next_prepare_ GUARDED_BY(mu_) = false;
  bool mvcc_ GUARDED_BY(mu_) = false;
  uint64_t last_commit_id_ GUARDED_BY(mu_) = 0;
};

/// Write staging for an extended-storage table. Commit bulk-loads the
/// staged rows into the disk store — the transactional (non-direct)
/// write path of the extended storage. Same idempotence and
/// thread-safety contract as ColumnTableParticipant.
class ExtendedTableParticipant : public Participant {
 public:
  ExtendedTableParticipant(std::string name, extended::ExtendedTable* table,
                           FaultInjector* injector = nullptr)
      : name_(std::move(name)), table_(table), injector_(injector) {}

  const std::string& name() const override { return name_; }

  [[nodiscard]] Status StageInsert(TxnId txn, std::vector<Value> row)
      EXCLUDES(mu_);

  [[nodiscard]] Status Prepare(TxnId txn) override EXCLUDES(mu_);
  [[nodiscard]] Status Commit(TxnId txn, uint64_t commit_id) override
      EXCLUDES(mu_);
  [[nodiscard]] Status Abort(TxnId txn) override EXCLUDES(mu_);

  void FailNextPrepare() EXCLUDES(mu_) {
    MutexLock lock(mu_);
    fail_next_prepare_ = true;
  }
  void SetFaultInjector(FaultInjector* injector) { injector_ = injector; }
  /// Simulates an unavailable extended store: every access errors until
  /// cleared (paper: "every access to a SAP HANA table may throw a
  /// runtime error" while the extended system is down).
  void SetUnavailable(bool value) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    unavailable_ = value;
  }
  bool unavailable() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return unavailable_;
  }

 private:
  struct Staged {
    std::vector<std::vector<Value>> inserts;
    bool prepared = false;
  };

  std::string name_;
  extended::ExtendedTable* table_;
  FaultInjector* injector_;
  /// Same level as the other participant locks: a thread works one
  /// participant at a time, so participant mutexes never nest.
  mutable Mutex mu_{"txn.participant.extended", lock_rank::kTxnParticipant};
  std::map<TxnId, Staged> staged_ GUARDED_BY(mu_);
  bool fail_next_prepare_ GUARDED_BY(mu_) = false;
  bool unavailable_ GUARDED_BY(mu_) = false;
};

}  // namespace hana::txn

#endif  // HANA_TXN_PARTICIPANTS_H_
