#ifndef HANA_TXN_TWO_PHASE_H_
#define HANA_TXN_TWO_PHASE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/mvcc.h"
#include "common/result.h"
#include "common/sync.h"

namespace hana {
class TaskPool;
}

namespace hana::txn {

using TxnId = uint64_t;

class FaultInjector;

/// A resource manager participating in distributed transactions —
/// implemented by the in-memory table store and the extended storage
/// (Section 3.1 "Transactions"): SAP HANA coordinates the transaction,
/// generating transaction and commit IDs, using an improved two-phase
/// commit protocol [14].
///
/// Concurrency contract: the coordinator fans Prepare/Commit/Abort out
/// over the task pool, so different participants of one transaction are
/// called concurrently. A single participant is called at most once at
/// a time per transaction, but successive calls may come from different
/// threads — implementations synchronize their own state.
class Participant {
 public:
  virtual ~Participant() = default;

  virtual const std::string& name() const = 0;

  /// Phase 1: make the transaction's effects durable-but-undoable.
  /// Returning non-OK votes "abort". Must be idempotent: a second
  /// Prepare of an already-prepared transaction is a no-op returning OK
  /// (the coordinator re-prepares when a client retries Commit after a
  /// phase-2 infrastructure failure).
  [[nodiscard]] virtual Status Prepare(TxnId txn) = 0;
  /// Phase 2 success: apply/expose the effects. Must not fail after a
  /// successful Prepare (any failure is an infrastructure error).
  [[nodiscard]] virtual Status Commit(TxnId txn, uint64_t commit_id) = 0;
  /// Phase 2 failure (or presumed abort during recovery).
  [[nodiscard]] virtual Status Abort(TxnId txn) = 0;
};

/// Coordinator log record kinds.
enum class LogKind { kBegin, kPrepared, kCommit, kAbort, kEnd };

struct LogRecord {
  LogKind kind;
  TxnId txn = 0;
  uint64_t commit_id = 0;
  std::vector<std::string> participants;  // On kPrepared.
};

/// Renders a log as one line per record — the canonical form the
/// deterministic-replay tests compare across runs.
std::string LogToString(const std::vector<LogRecord>& log);

/// Failure-injection points for tests and the 2PC ablation benchmark.
enum class Failpoint {
  kNone,
  kBeforePrepare,
  kAfterPrepare,   // Crash after all participants prepared, before the
                   // commit record: transactions become in-doubt.
  kAfterCommitRecord,
};

/// Coordinator tuning knobs.
struct TwoPhaseOptions {
  /// Fan participant Prepare/Commit/Abort calls out over the task pool
  /// (votes are collected concurrently; commit latency is the slowest
  /// participant instead of the sum). Off = the sequential protocol,
  /// kept for the bench_2pc ablation.
  bool parallel_vote = true;
  /// Pool for the fan-out; nullptr = TaskPool::Global().
  TaskPool* pool = nullptr;
};

/// The distributed transaction coordinator. Keeps a (in-memory,
/// replayable) write-ahead log; Recover() resolves in-doubt transactions
/// jointly with all registered participants — mirroring the paper's
/// integrated recovery of HANA + extended storage.
///
/// Thread-safety: all public methods are safe to call concurrently;
/// coordinator state (log, active set, id counters) is guarded by mu_.
/// Participant calls always happen with mu_ released, fanned out over
/// the task pool when parallel_vote is on. Votes are aggregated in
/// enlist order — the first failure *in participant order* (not
/// completion order) becomes the primary error — so the outcome, the
/// log and the in-doubt set are deterministic for a given fault
/// schedule regardless of thread interleaving.
class TwoPhaseCoordinator {
 public:
  TwoPhaseCoordinator() = default;
  explicit TwoPhaseCoordinator(TwoPhaseOptions options)
      : options_(options) {}

  TxnId Begin() EXCLUDES(mu_);

  /// Enlists a participant in `txn` (idempotent).
  [[nodiscard]] Status Enlist(TxnId txn, Participant* participant)
      EXCLUDES(mu_);

  /// Runs the full two-phase protocol. Votes are collected concurrently;
  /// on any prepare failure the transaction aborts everywhere (late
  /// voters are still awaited and rolled back) and the error is
  /// returned, naming every failed voter in enlist order.
  [[nodiscard]] Status Commit(TxnId txn) EXCLUDES(mu_);

  [[nodiscard]] Status Abort(TxnId txn) EXCLUDES(mu_);

  /// Simulates a coordinator crash: volatile state is dropped; only the
  /// log survives. Prepared-but-unresolved transactions become in-doubt.
  void Crash() EXCLUDES(mu_);

  /// Replays the log: commits transactions with a commit record, aborts
  /// (presumed abort) the rest. Participants must be re-registered via
  /// RegisterRecoveryParticipant before calling.
  [[nodiscard]] Status Recover() EXCLUDES(mu_);

  void RegisterRecoveryParticipant(Participant* participant) EXCLUDES(mu_);

  /// Transactions prepared but neither committed nor aborted (visible
  /// after Crash(), before Recover()). Clients may manually abort them.
  std::vector<TxnId> InDoubt() const EXCLUDES(mu_);

  /// Manually aborts an in-doubt transaction (paper: "Clients will have
  /// the ability to manually abort these in-doubt transactions").
  [[nodiscard]] Status AbortInDoubt(TxnId txn) EXCLUDES(mu_);

  void SetFailpoint(Failpoint fp) EXCLUDES(mu_);

  /// Attaches a fault-injection layer; the coordinator consults it at
  /// every failpoint (participants hook it separately). Set before the
  /// first Commit and keep alive for the coordinator's lifetime.
  void SetFaultInjector(FaultInjector* injector) EXCLUDES(mu_);

  /// Wires MVCC snapshot isolation: commit ids become commit timestamps
  /// allocated from `vm` (AllocateCommit at the commit record,
  /// FinishCommit once every participant has stamped its write set —
  /// keeping readers from ever observing a half-stamped transaction).
  /// Set at wiring time, before the first Begin; participants sharing
  /// the timestamp domain must have EnableMvcc() set. Survives Crash():
  /// the version manager models the recoverable timestamp authority,
  /// not coordinator volatile state.
  void SetVersionManager(mvcc::VersionManager* vm) EXCLUDES(mu_);

  /// Snapshot of the write-ahead log (by value: commits on other
  /// threads may be appending concurrently).
  std::vector<LogRecord> log() const EXCLUDES(mu_);
  uint64_t last_commit_id() const EXCLUDES(mu_);

 private:
  struct ActiveTxn {
    std::vector<Participant*> participants;
  };

  /// Runs fn over every participant — concurrently over the task pool
  /// when parallel_vote is on (the calling thread participates and
  /// helps drain the pool queue while awaiting stragglers, so a
  /// saturated pool cannot deadlock the vote) — and returns the
  /// statuses indexed in participant order. Always awaits every call.
  std::vector<Status> FanOut(
      const std::vector<Participant*>& parts,
      const std::function<Status(Participant*)>& fn) EXCLUDES(mu_);

  /// Fans out Abort, appends the abort record and drops the txn.
  /// Returns the first rollback failure (participant order), with any
  /// additional failures folded into its message.
  [[nodiscard]] Status AbortEverywhere(
      TxnId txn, const std::vector<Participant*>& parts) EXCLUDES(mu_);

  /// True when a crash is due at `fp` — via SetFailpoint or the
  /// attached fault injector.
  bool CrashDueAt(Failpoint fp) REQUIRES(mu_);
  void CrashLocked() REQUIRES(mu_);

  Participant* FindRecoveryParticipant(const std::string& name) const
      REQUIRES(mu_);
  std::vector<TxnId> InDoubtLocked() const REQUIRES(mu_);

  /// Allocates the next commit id — from the version manager when one
  /// is wired (registering the id as in-flight), else from the local
  /// counter. The counter mirrors the allocation either way so
  /// last_commit_id() stays meaningful.
  uint64_t AllocateCommitIdLocked() REQUIRES(mu_);
  /// Marks `commit_id` fully stamped (no-op without a version manager).
  /// Safe under mu_: the version-manager lock ranks above the
  /// coordinator's (30 -> 45).
  void FinishCommitLocked(uint64_t commit_id) REQUIRES(mu_);
  void FinishCommitTs(uint64_t commit_id) EXCLUDES(mu_);

  TwoPhaseOptions options_;

  /// Guards all coordinator state. Never held across participant calls
  /// or task-pool submission/waits (fan-out copies what it needs out
  /// first), so it cannot order against participant or pool mutexes;
  /// the injector is called under it (rank 30 < 70).
  mutable Mutex mu_{"txn.coordinator", lock_rank::kTxnCoordinator};
  TxnId next_txn_ GUARDED_BY(mu_) = 1;
  uint64_t next_commit_id_ GUARDED_BY(mu_) = 1;
  std::map<TxnId, ActiveTxn> active_ GUARDED_BY(mu_);
  std::vector<LogRecord> log_ GUARDED_BY(mu_);
  std::vector<Participant*> recovery_participants_ GUARDED_BY(mu_);
  Failpoint failpoint_ GUARDED_BY(mu_) = Failpoint::kNone;
  FaultInjector* injector_ GUARDED_BY(mu_) = nullptr;
  mvcc::VersionManager* vm_ GUARDED_BY(mu_) = nullptr;
  bool crashed_ GUARDED_BY(mu_) = false;
};

}  // namespace hana::txn

#endif  // HANA_TXN_TWO_PHASE_H_
