#ifndef HANA_TXN_TWO_PHASE_H_
#define HANA_TXN_TWO_PHASE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"

namespace hana::txn {

using TxnId = uint64_t;

/// A resource manager participating in distributed transactions —
/// implemented by the in-memory table store and the extended storage
/// (Section 3.1 "Transactions"): SAP HANA coordinates the transaction,
/// generating transaction and commit IDs, using an improved two-phase
/// commit protocol [14].
class Participant {
 public:
  virtual ~Participant() = default;

  virtual const std::string& name() const = 0;

  /// Phase 1: make the transaction's effects durable-but-undoable.
  /// Returning non-OK votes "abort".
  [[nodiscard]] virtual Status Prepare(TxnId txn) = 0;
  /// Phase 2 success: apply/expose the effects. Must not fail after a
  /// successful Prepare (any failure is an infrastructure error).
  [[nodiscard]] virtual Status Commit(TxnId txn, uint64_t commit_id) = 0;
  /// Phase 2 failure (or presumed abort during recovery).
  [[nodiscard]] virtual Status Abort(TxnId txn) = 0;
};

/// Coordinator log record kinds.
enum class LogKind { kBegin, kPrepared, kCommit, kAbort, kEnd };

struct LogRecord {
  LogKind kind;
  TxnId txn = 0;
  uint64_t commit_id = 0;
  std::vector<std::string> participants;  // On kPrepared.
};

/// Failure-injection points for tests and the 2PC ablation benchmark.
enum class Failpoint {
  kNone,
  kBeforePrepare,
  kAfterPrepare,   // Crash after all participants prepared, before the
                   // commit record: transactions become in-doubt.
  kAfterCommitRecord,
};

/// The distributed transaction coordinator. Keeps a (in-memory,
/// replayable) write-ahead log; Recover() resolves in-doubt transactions
/// jointly with all registered participants — mirroring the paper's
/// integrated recovery of HANA + extended storage.
class TwoPhaseCoordinator {
 public:
  TwoPhaseCoordinator() = default;

  TxnId Begin();

  /// Enlists a participant in `txn` (idempotent).
  [[nodiscard]] Status Enlist(TxnId txn, Participant* participant);

  /// Runs the full two-phase protocol. On any prepare failure the
  /// transaction aborts everywhere and the error is returned.
  [[nodiscard]] Status Commit(TxnId txn);

  [[nodiscard]] Status Abort(TxnId txn);

  /// Simulates a coordinator crash: volatile state is dropped; only the
  /// log survives. Prepared-but-unresolved transactions become in-doubt.
  void Crash();

  /// Replays the log: commits transactions with a commit record, aborts
  /// (presumed abort) the rest. Participants must be re-registered via
  /// RegisterRecoveryParticipant before calling.
  [[nodiscard]] Status Recover();

  void RegisterRecoveryParticipant(Participant* participant);

  /// Transactions prepared but neither committed nor aborted (visible
  /// after Crash(), before Recover()). Clients may manually abort them.
  std::vector<TxnId> InDoubt() const;

  /// Manually aborts an in-doubt transaction (paper: "Clients will have
  /// the ability to manually abort these in-doubt transactions").
  [[nodiscard]] Status AbortInDoubt(TxnId txn);

  void SetFailpoint(Failpoint fp) { failpoint_ = fp; }

  const std::vector<LogRecord>& log() const { return log_; }
  uint64_t last_commit_id() const { return next_commit_id_ - 1; }

 private:
  struct ActiveTxn {
    std::vector<Participant*> participants;
  };

  [[nodiscard]] Status AbortEverywhere(TxnId txn, const std::vector<Participant*>& parts);
  Participant* FindRecoveryParticipant(const std::string& name) const;

  TxnId next_txn_ = 1;
  uint64_t next_commit_id_ = 1;
  std::map<TxnId, ActiveTxn> active_;
  std::vector<LogRecord> log_;
  std::vector<Participant*> recovery_participants_;
  Failpoint failpoint_ = Failpoint::kNone;
  bool crashed_ = false;
};

}  // namespace hana::txn

#endif  // HANA_TXN_TWO_PHASE_H_
