#include "txn/fault_injection.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace hana::txn {

const char* FaultOpName(FaultOp op) {
  switch (op) {
    case FaultOp::kPrepare:
      return "prepare";
    case FaultOp::kCommit:
      return "commit";
    case FaultOp::kAbort:
      return "abort";
  }
  return "unknown";
}

bool FaultEvent::operator<(const FaultEvent& other) const {
  if (txn != other.txn) return txn < other.txn;
  if (participant != other.participant) return participant < other.participant;
  if (op != other.op) return static_cast<int>(op) < static_cast<int>(other.op);
  return action < other.action;
}

bool FaultEvent::operator==(const FaultEvent& other) const {
  return txn == other.txn && participant == other.participant &&
         op == other.op && action == other.action;
}

std::string FaultEvent::ToString() const {
  return "txn=" + std::to_string(txn) + " " + participant + "." +
         FaultOpName(op) + " " + action;
}

void FaultInjector::FailNext(const std::string& participant, FaultOp op,
                             int times) {
  MutexLock lock(mu_);
  fail_counts_[Key{participant, op}] += times;
}

void FaultInjector::SetLatencyMs(const std::string& participant, FaultOp op,
                                 double ms) {
  MutexLock lock(mu_);
  if (ms <= 0) {
    latency_ms_.erase(Key{participant, op});
  } else {
    latency_ms_[Key{participant, op}] = ms;
  }
}

void FaultInjector::Hold(const std::string& participant, FaultOp op,
                         size_t release_after_arrivals,
                         size_t release_after_completions) {
  MutexLock lock(mu_);
  holds_[Key{participant, op}] =
      HoldSpec{true, release_after_arrivals, release_after_completions};
}

void FaultInjector::Release(const std::string& participant, FaultOp op) {
  {
    MutexLock lock(mu_);
    auto it = holds_.find(Key{participant, op});
    if (it == holds_.end()) return;
    it->second.held = false;
  }
  cv_.NotifyAll();
}

void FaultInjector::ReleaseAll() {
  {
    MutexLock lock(mu_);
    for (auto& [key, spec] : holds_) spec.held = false;
  }
  cv_.NotifyAll();
}

void FaultInjector::CrashCoordinatorAt(Failpoint fp) {
  MutexLock lock(mu_);
  coordinator_crashes_[fp] += 1;
}

void FaultInjector::Record(TxnId txn, const std::string& participant,
                           FaultOp op, const char* action) {
  trace_.push_back(FaultEvent{txn, participant, op, action});
}

Status FaultInjector::OnCall(FaultOp op, const std::string& participant,
                             TxnId txn) {
  Key key{participant, op};
  std::pair<int, TxnId> counter_key{static_cast<int>(op), txn};
  double sleep_ms = 0;
  bool fail = false;
  {
    MutexLock lock(mu_);
    counters_[counter_key].arrivals += 1;
    auto hold_it = holds_.find(key);
    if (hold_it != holds_.end() && hold_it->second.held) {
      Record(txn, participant, op, "hold");
      // Wake any other held call whose auto-release condition this
      // arrival satisfied, then wait for our own.
      cv_.NotifyAll();
      while (true) {
        hold_it = holds_.find(key);  // Re-find: the map may have grown.
        if (hold_it == holds_.end() || !hold_it->second.held) break;
        const HoldSpec& spec = hold_it->second;
        const Counter& c = counters_[counter_key];
        if (spec.release_after_arrivals > 0 &&
            c.arrivals >= spec.release_after_arrivals) {
          break;
        }
        if (spec.release_after_completions > 0 &&
            c.completions >= spec.release_after_completions) {
          break;
        }
        cv_.Wait(mu_);
      }
      holds_.erase(key);  // One-shot: the latch is consumed.
      Record(txn, participant, op, "release");
    } else {
      cv_.NotifyAll();  // Arrival may satisfy someone else's condition.
    }
    auto latency_it = latency_ms_.find(key);
    if (latency_it != latency_ms_.end()) {
      sleep_ms = latency_it->second;
      Record(txn, participant, op, "latency");
    }
    auto fail_it = fail_counts_.find(key);
    if (fail_it != fail_counts_.end() && fail_it->second > 0) {
      fail_it->second -= 1;
      fail = true;
      Record(txn, participant, op, "fail");
    }
  }
  if (sleep_ms > 0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        sleep_ms));
  }
  Status result = Status::OK();
  if (fail) {
    std::string msg = participant + ": injected " +
                      std::string(FaultOpName(op)) + " failure";
    result = op == FaultOp::kPrepare
                 ? Status::TransactionAborted(std::move(msg))
                 : Status::Unavailable(std::move(msg));
  }
  {
    MutexLock lock(mu_);
    counters_[counter_key].completions += 1;
  }
  cv_.NotifyAll();
  return result;
}

bool FaultInjector::ConsumeCoordinatorCrash(Failpoint fp) {
  MutexLock lock(mu_);
  auto it = coordinator_crashes_.find(fp);
  if (it == coordinator_crashes_.end() || it->second <= 0) return false;
  it->second -= 1;
  Record(0, "coordinator", FaultOp::kPrepare, "crash");
  return true;
}

std::vector<FaultEvent> FaultInjector::Trace() const {
  std::vector<FaultEvent> copy;
  {
    MutexLock lock(mu_);
    copy = trace_;
  }
  std::sort(copy.begin(), copy.end());
  return copy;
}

std::string FaultInjector::TraceToString() const {
  std::string out;
  for (const FaultEvent& event : Trace()) {
    out += event.ToString();
    out += '\n';
  }
  return out;
}

void FaultInjector::ClearTrace() {
  MutexLock lock(mu_);
  trace_.clear();
}

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kFailPrepare:
      return "fail_prepare";
    case FaultKind::kFailCommit:
      return "fail_commit";
    case FaultKind::kHangPrepare:
      return "hang_prepare";
    case FaultKind::kPrepareLatency:
      return "prepare_latency";
  }
  return "unknown";
}

std::string TxnFaultPlan::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < participant_faults.size(); ++i) {
    if (i > 0) out += ",";
    out += FaultKindName(participant_faults[i]);
  }
  out += "] failpoint=";
  out += std::to_string(static_cast<int>(failpoint));
  return out;
}

std::vector<TxnFaultPlan> FaultSchedule::Generate(size_t num_txns,
                                                  size_t num_participants,
                                                  const Mix& mix) {
  std::vector<TxnFaultPlan> plans;
  plans.reserve(num_txns);
  for (size_t t = 0; t < num_txns; ++t) {
    TxnFaultPlan plan;
    plan.participant_faults.resize(num_participants, FaultKind::kNone);
    bool hang_assigned = false;  // One hang per txn keeps release
                                 // conditions trivially satisfiable.
    for (size_t p = 0; p < num_participants; ++p) {
      double roll = rng_.NextDouble();
      if (roll < mix.fail_prepare) {
        plan.participant_faults[p] = FaultKind::kFailPrepare;
      } else if (roll < mix.fail_prepare + mix.fail_commit) {
        plan.participant_faults[p] = FaultKind::kFailCommit;
      } else if (roll < mix.fail_prepare + mix.fail_commit +
                            mix.hang_prepare) {
        if (!hang_assigned) {
          plan.participant_faults[p] = FaultKind::kHangPrepare;
          hang_assigned = true;
        }
      } else if (roll < mix.fail_prepare + mix.fail_commit +
                            mix.hang_prepare + mix.prepare_latency) {
        plan.participant_faults[p] = FaultKind::kPrepareLatency;
      }
    }
    if (rng_.NextDouble() < mix.coordinator_crash) {
      switch (rng_.Uniform(0, 2)) {
        case 0:
          plan.failpoint = Failpoint::kBeforePrepare;
          break;
        case 1:
          plan.failpoint = Failpoint::kAfterPrepare;
          break;
        default:
          plan.failpoint = Failpoint::kAfterCommitRecord;
          break;
      }
    }
    plans.push_back(std::move(plan));
  }
  return plans;
}

void FaultSchedule::Arm(const TxnFaultPlan& plan,
                        const std::vector<std::string>& names,
                        double latency_ms, FaultInjector* injector) {
  for (size_t i = 0; i < plan.participant_faults.size() && i < names.size();
       ++i) {
    switch (plan.participant_faults[i]) {
      case FaultKind::kNone:
        break;
      case FaultKind::kFailPrepare:
        injector->FailNext(names[i], FaultOp::kPrepare);
        break;
      case FaultKind::kFailCommit:
        injector->FailNext(names[i], FaultOp::kCommit);
        break;
      case FaultKind::kHangPrepare:
        // Recovers once every vote of the transaction has arrived.
        injector->Hold(names[i], FaultOp::kPrepare,
                       /*release_after_arrivals=*/names.size());
        break;
      case FaultKind::kPrepareLatency:
        injector->SetLatencyMs(names[i], FaultOp::kPrepare, latency_ms);
        break;
    }
  }
  if (plan.failpoint != Failpoint::kNone) {
    injector->CrashCoordinatorAt(plan.failpoint);
  }
}

}  // namespace hana::txn
