#include "txn/participants.h"

#include "txn/fault_injection.h"

namespace hana::txn {

Status ColumnTableParticipant::StageInsert(TxnId txn, std::vector<Value> row) {
  if (row.size() != table_->schema()->num_columns()) {
    return Status::InvalidArgument("row arity mismatch");
  }
  MutexLock lock(mu_);
  staged_[txn].inserts.push_back(std::move(row));
  return Status::OK();
}

Status ColumnTableParticipant::StageDelete(TxnId txn, size_t row_index) {
  if (row_index >= table_->num_rows()) {
    return Status::OutOfRange("row index out of range");
  }
  MutexLock lock(mu_);
  staged_[txn].deletes.push_back(row_index);
  return Status::OK();
}

bool ColumnTableParticipant::IsPrepared(TxnId txn) const {
  MutexLock lock(mu_);
  auto it = staged_.find(txn);
  return it != staged_.end() && it->second.prepared;
}

Status ColumnTableParticipant::Prepare(TxnId txn) {
  {
    // Idempotence: an already-cast vote stands; do not re-validate or
    // consume armed faults on the coordinator's re-drive.
    MutexLock lock(mu_);
    auto it = staged_.find(txn);
    if (it != staged_.end() && it->second.prepared) return Status::OK();
  }
  if (injector_ != nullptr) {
    HANA_RETURN_IF_ERROR(injector_->OnCall(FaultOp::kPrepare, name_, txn));
  }
  MutexLock lock(mu_);
  if (fail_next_prepare_) {
    fail_next_prepare_ = false;
    return Status::TransactionAborted(name_ + ": injected prepare failure");
  }
  auto it = staged_.find(txn);
  if (it != staged_.end()) {
    for (const auto& row : it->second.inserts) {
      for (size_t c = 0; c < row.size(); ++c) {
        if (row[c].is_null() && !table_->schema()->column(c).nullable) {
          return Status::InvalidArgument(
              name_ + ": NULL in NOT NULL column " +
              table_->schema()->column(c).name);
        }
      }
    }
    if (mvcc_ && !it->second.applied) {
      HANA_RETURN_IF_ERROR(ApplyUncommitted(txn, it->second));
    }
    it->second.prepared = true;
  }
  return Status::OK();
}

Status ColumnTableParticipant::ApplyUncommitted(TxnId txn, Staged& s) {
  // Delete claims first: they are the only conflict-detecting step, so
  // a losing transaction aborts before growing the delta. A conflict
  // releases the claims taken so far — the insert handle does not exist
  // yet — leaving no trace of this transaction.
  for (size_t row : s.deletes) {
    Status claim = table_->StageDeleteUncommitted(row, txn);
    if (!claim.ok()) {
      for (size_t claimed : s.claimed_deletes) {
        table_->AbortDelete(claimed, txn);
      }
      s.claimed_deletes.clear();
      return Status(claim.code(), name_ + ": " + claim.message());
    }
    s.claimed_deletes.push_back(row);
  }
  auto handle = table_->AppendRowsUncommitted(s.inserts, txn);
  if (!handle.ok()) {
    for (size_t claimed : s.claimed_deletes) {
      table_->AbortDelete(claimed, txn);
    }
    s.claimed_deletes.clear();
    return Status(handle.status().code(),
                  name_ + ": " + handle.status().message());
  }
  s.insert_handle = *handle;
  s.applied = true;
  return Status::OK();
}

Status ColumnTableParticipant::Commit(TxnId txn, uint64_t commit_id) {
  if (injector_ != nullptr) {
    HANA_RETURN_IF_ERROR(injector_->OnCall(FaultOp::kCommit, name_, txn));
  }
  MutexLock lock(mu_);
  auto it = staged_.find(txn);
  if (it == staged_.end()) return Status::OK();  // Nothing staged here.
  if (mvcc_ && !it->second.applied) {
    // Roll-forward of a committed transaction that never went through
    // Prepare here (recovery re-drive against fresh staging): install
    // the versions now, then stamp them below.
    HANA_RETURN_IF_ERROR(ApplyUncommitted(txn, it->second));
  }
  if (it->second.applied) {
    // MVCC: the write set is already installed as uncommitted versions;
    // stamping the commit timestamp flips it visible. Deletes first so
    // a same-transaction insert+delete of one row never shows the
    // insert without the delete.
    for (size_t row : it->second.claimed_deletes) {
      table_->CommitDelete(row, commit_id);
    }
    table_->CommitAppend(it->second.insert_handle, commit_id);
  } else {
    for (size_t row : it->second.deletes) {
      HANA_RETURN_IF_ERROR(table_->DeleteRow(row));
    }
    for (auto& row : it->second.inserts) {
      HANA_RETURN_IF_ERROR(table_->AppendRow(row));
    }
  }
  staged_.erase(it);
  last_commit_id_ = commit_id;
  return Status::OK();
}

Status ColumnTableParticipant::Abort(TxnId txn) {
  if (injector_ != nullptr) {
    HANA_RETURN_IF_ERROR(injector_->OnCall(FaultOp::kAbort, name_, txn));
  }
  MutexLock lock(mu_);
  auto it = staged_.find(txn);
  if (it != staged_.end() && it->second.applied) {
    // MVCC: mark the installed versions dead. Aborted inserts become
    // never-visible; claimed deletes revert to live.
    table_->AbortAppend(it->second.insert_handle);
    for (size_t row : it->second.claimed_deletes) {
      table_->AbortDelete(row, txn);
    }
  }
  staged_.erase(txn);  // Unknown transactions are a no-op by design.
  return Status::OK();
}

Status ExtendedTableParticipant::StageInsert(TxnId txn,
                                             std::vector<Value> row) {
  if (row.size() != table_->schema()->num_columns()) {
    return Status::InvalidArgument("row arity mismatch");
  }
  MutexLock lock(mu_);
  if (unavailable_) {
    return Status::Unavailable(name_ + ": extended storage unreachable");
  }
  staged_[txn].inserts.push_back(std::move(row));
  return Status::OK();
}

Status ExtendedTableParticipant::Prepare(TxnId txn) {
  {
    MutexLock lock(mu_);
    auto it = staged_.find(txn);
    if (it != staged_.end() && it->second.prepared) return Status::OK();
  }
  if (injector_ != nullptr) {
    HANA_RETURN_IF_ERROR(injector_->OnCall(FaultOp::kPrepare, name_, txn));
  }
  MutexLock lock(mu_);
  if (unavailable_) {
    return Status::Unavailable(name_ + ": extended storage unreachable");
  }
  if (fail_next_prepare_) {
    fail_next_prepare_ = false;
    return Status::TransactionAborted(name_ + ": injected prepare failure");
  }
  auto it = staged_.find(txn);
  if (it != staged_.end()) it->second.prepared = true;
  return Status::OK();
}

Status ExtendedTableParticipant::Commit(TxnId txn, uint64_t commit_id) {
  (void)commit_id;
  if (injector_ != nullptr) {
    HANA_RETURN_IF_ERROR(injector_->OnCall(FaultOp::kCommit, name_, txn));
  }
  MutexLock lock(mu_);
  if (unavailable_) {
    return Status::Unavailable(name_ + ": extended storage unreachable");
  }
  auto it = staged_.find(txn);
  if (it == staged_.end()) return Status::OK();
  HANA_RETURN_IF_ERROR(table_->BulkLoad(it->second.inserts));
  staged_.erase(it);
  return Status::OK();
}

Status ExtendedTableParticipant::Abort(TxnId txn) {
  if (injector_ != nullptr) {
    HANA_RETURN_IF_ERROR(injector_->OnCall(FaultOp::kAbort, name_, txn));
  }
  MutexLock lock(mu_);
  staged_.erase(txn);
  return Status::OK();
}

}  // namespace hana::txn
