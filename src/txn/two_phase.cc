#include "txn/two_phase.h"

#include <algorithm>

namespace hana::txn {

TxnId TwoPhaseCoordinator::Begin() {
  TxnId txn = next_txn_++;
  active_[txn] = ActiveTxn{};
  log_.push_back({LogKind::kBegin, txn, 0, {}});
  return txn;
}

Status TwoPhaseCoordinator::Enlist(TxnId txn, Participant* participant) {
  auto it = active_.find(txn);
  if (it == active_.end()) {
    return Status::NotFound("unknown transaction " + std::to_string(txn));
  }
  auto& parts = it->second.participants;
  if (std::find(parts.begin(), parts.end(), participant) == parts.end()) {
    parts.push_back(participant);
  }
  return Status::OK();
}

Status TwoPhaseCoordinator::AbortEverywhere(
    TxnId txn, const std::vector<Participant*>& parts) {
  Status first_error;
  for (Participant* p : parts) {
    Status s = p->Abort(txn);
    if (!s.ok() && first_error.ok()) first_error = s;
  }
  log_.push_back({LogKind::kAbort, txn, 0, {}});
  active_.erase(txn);
  return first_error;
}

Status TwoPhaseCoordinator::Commit(TxnId txn) {
  auto it = active_.find(txn);
  if (it == active_.end()) {
    return Status::NotFound("unknown transaction " + std::to_string(txn));
  }
  std::vector<Participant*> parts = it->second.participants;

  if (failpoint_ == Failpoint::kBeforePrepare) {
    Crash();
    return Status::Unavailable("coordinator crashed before prepare");
  }

  // Phase 1: prepare everywhere. An optimization from the improved
  // protocol [14]: a single-participant transaction commits in one phase.
  bool single = parts.size() <= 1;
  if (!single) {
    std::vector<std::string> names;
    for (Participant* p : parts) {
      Status s = p->Prepare(txn);
      if (!s.ok()) {
        // The prepare failure is the primary error; a failed rollback
        // must not be swallowed either, so it rides along in the message.
        Status abort_status = AbortEverywhere(txn, parts);
        std::string detail = "prepare failed at " + p->name() + ": " +
                             s.message();
        if (!abort_status.ok()) {
          detail += "; rollback also failed: " + abort_status.message();
        }
        return Status::TransactionAborted(std::move(detail));
      }
      names.push_back(p->name());
    }
    log_.push_back({LogKind::kPrepared, txn, 0, names});
  }

  if (failpoint_ == Failpoint::kAfterPrepare) {
    Crash();
    return Status::Unavailable(
        "coordinator crashed after prepare; transaction in doubt");
  }

  uint64_t commit_id = next_commit_id_++;
  log_.push_back({LogKind::kCommit, txn, commit_id, {}});

  if (failpoint_ == Failpoint::kAfterCommitRecord) {
    Crash();
    return Status::Unavailable(
        "coordinator crashed after commit record; recovery will finish");
  }

  for (Participant* p : parts) {
    Status s = single ? [&] {
      Status prep = p->Prepare(txn);
      return prep.ok() ? p->Commit(txn, commit_id) : prep;
    }()
                      : p->Commit(txn, commit_id);
    if (!s.ok()) {
      if (single) {
        // Same pattern as the prepare path: report a failed rollback
        // alongside the primary one-phase commit failure.
        Status abort_status = AbortEverywhere(txn, parts);
        std::string detail = "commit failed at " + p->name() + ": " +
                             s.message();
        if (!abort_status.ok()) {
          detail += "; rollback also failed: " + abort_status.message();
        }
        return Status::TransactionAborted(std::move(detail));
      }
      return Status::Internal("participant " + p->name() +
                              " failed after global commit: " + s.message());
    }
  }
  log_.push_back({LogKind::kEnd, txn, commit_id, {}});
  active_.erase(txn);
  return Status::OK();
}

Status TwoPhaseCoordinator::Abort(TxnId txn) {
  auto it = active_.find(txn);
  if (it == active_.end()) {
    return Status::NotFound("unknown transaction " + std::to_string(txn));
  }
  std::vector<Participant*> parts = it->second.participants;
  return AbortEverywhere(txn, parts);
}

void TwoPhaseCoordinator::Crash() {
  active_.clear();
  recovery_participants_.clear();
  crashed_ = true;
  failpoint_ = Failpoint::kNone;
}

void TwoPhaseCoordinator::RegisterRecoveryParticipant(
    Participant* participant) {
  recovery_participants_.push_back(participant);
}

Participant* TwoPhaseCoordinator::FindRecoveryParticipant(
    const std::string& name) const {
  for (Participant* p : recovery_participants_) {
    if (p->name() == name) return p;
  }
  return nullptr;
}

std::vector<TxnId> TwoPhaseCoordinator::InDoubt() const {
  std::set<TxnId> prepared;
  std::set<TxnId> resolved;
  for (const LogRecord& rec : log_) {
    switch (rec.kind) {
      case LogKind::kPrepared:
        prepared.insert(rec.txn);
        break;
      case LogKind::kCommit:
      case LogKind::kAbort:
        resolved.insert(rec.txn);
        break;
      default:
        break;
    }
  }
  std::vector<TxnId> in_doubt;
  for (TxnId txn : prepared) {
    if (resolved.count(txn) == 0) in_doubt.push_back(txn);
  }
  return in_doubt;
}

Status TwoPhaseCoordinator::AbortInDoubt(TxnId txn) {
  std::vector<TxnId> in_doubt = InDoubt();
  if (std::find(in_doubt.begin(), in_doubt.end(), txn) == in_doubt.end()) {
    return Status::NotFound("transaction not in doubt: " +
                            std::to_string(txn));
  }
  // Find its participants from the prepare record.
  for (const LogRecord& rec : log_) {
    if (rec.kind == LogKind::kPrepared && rec.txn == txn) {
      for (const std::string& name : rec.participants) {
        if (Participant* p = FindRecoveryParticipant(name)) {
          HANA_RETURN_IF_ERROR(p->Abort(txn));
        }
      }
    }
  }
  log_.push_back({LogKind::kAbort, txn, 0, {}});
  return Status::OK();
}

Status TwoPhaseCoordinator::Recover() {
  // Presumed abort: transactions with a commit record roll forward;
  // everything else (including in-doubt) rolls back on every participant.
  std::map<TxnId, uint64_t> committed;
  std::set<TxnId> ended;
  std::map<TxnId, std::vector<std::string>> prepared;
  std::set<TxnId> seen;
  for (const LogRecord& rec : log_) {
    seen.insert(rec.txn);
    switch (rec.kind) {
      case LogKind::kCommit:
        committed[rec.txn] = rec.commit_id;
        break;
      case LogKind::kEnd:
        ended.insert(rec.txn);
        break;
      case LogKind::kPrepared:
        prepared[rec.txn] = rec.participants;
        break;
      default:
        break;
    }
  }
  for (TxnId txn : seen) {
    if (ended.count(txn) > 0) continue;  // Fully finished.
    auto commit_it = committed.find(txn);
    auto prep_it = prepared.find(txn);
    std::vector<Participant*> parts;
    if (prep_it != prepared.end()) {
      for (const std::string& name : prep_it->second) {
        if (Participant* p = FindRecoveryParticipant(name)) parts.push_back(p);
      }
    } else {
      parts = recovery_participants_;
    }
    if (commit_it != committed.end()) {
      for (Participant* p : parts) {
        HANA_RETURN_IF_ERROR(p->Commit(txn, commit_it->second));
      }
      log_.push_back({LogKind::kEnd, txn, commit_it->second, {}});
    } else {
      for (Participant* p : parts) {
        HANA_RETURN_IF_ERROR(p->Abort(txn));
      }
      log_.push_back({LogKind::kAbort, txn, 0, {}});
      log_.push_back({LogKind::kEnd, txn, 0, {}});
    }
  }
  crashed_ = false;
  return Status::OK();
}

}  // namespace hana::txn
