#include "txn/two_phase.h"

#include <algorithm>
#include <chrono>
#include <future>

#include "common/task_pool.h"
#include "txn/fault_injection.h"

namespace hana::txn {

namespace {

const char* LogKindName(LogKind kind) {
  switch (kind) {
    case LogKind::kBegin:
      return "BEGIN";
    case LogKind::kPrepared:
      return "PREPARED";
    case LogKind::kCommit:
      return "COMMIT";
    case LogKind::kAbort:
      return "ABORT";
    case LogKind::kEnd:
      return "END";
  }
  return "?";
}

}  // namespace

std::string LogToString(const std::vector<LogRecord>& log) {
  std::string out;
  for (const LogRecord& rec : log) {
    out += LogKindName(rec.kind);
    out += " txn=" + std::to_string(rec.txn);
    if (rec.commit_id != 0) out += " cid=" + std::to_string(rec.commit_id);
    for (const std::string& name : rec.participants) out += " " + name;
    out += '\n';
  }
  return out;
}

TxnId TwoPhaseCoordinator::Begin() {
  MutexLock lock(mu_);
  TxnId txn = next_txn_++;
  active_[txn] = ActiveTxn{};
  log_.push_back({LogKind::kBegin, txn, 0, {}});
  return txn;
}

Status TwoPhaseCoordinator::Enlist(TxnId txn, Participant* participant) {
  MutexLock lock(mu_);
  auto it = active_.find(txn);
  if (it == active_.end()) {
    return Status::NotFound("unknown transaction " + std::to_string(txn));
  }
  auto& parts = it->second.participants;
  if (std::find(parts.begin(), parts.end(), participant) == parts.end()) {
    parts.push_back(participant);
  }
  return Status::OK();
}

std::vector<Status> TwoPhaseCoordinator::FanOut(
    const std::vector<Participant*>& parts,
    const std::function<Status(Participant*)>& fn) {
  size_t n = parts.size();
  std::vector<Status> results(n);
  if (n == 0) return results;
  if (!options_.parallel_vote || n == 1) {
    for (size_t i = 0; i < n; ++i) results[i] = fn(parts[i]);
    return results;
  }
  TaskPool* pool = options_.pool != nullptr ? options_.pool
                                            : &TaskPool::Global();
  // One task per participant beyond the first; the caller votes
  // participant 0 itself, then helps drain the pool queue while
  // awaiting stragglers (late voters are always awaited — a vote that
  // arrives after a failure still completes and is rolled back by the
  // caller). Results land in participant slots, so aggregation order is
  // enlist order, independent of completion order.
  std::vector<std::future<void>> futures;
  futures.reserve(n - 1);
  for (size_t i = 1; i < n; ++i) {
    futures.push_back(
        pool->Submit([&results, &fn, &parts, i] { results[i] = fn(parts[i]); }));
  }
  results[0] = fn(parts[0]);
  for (auto& f : futures) {
    while (f.wait_for(std::chrono::seconds(0)) !=
           std::future_status::ready) {
      if (!pool->TryRunOneTask()) {
        f.wait_for(std::chrono::milliseconds(1));
      }
    }
  }
  return results;
}

Status TwoPhaseCoordinator::AbortEverywhere(
    TxnId txn, const std::vector<Participant*>& parts) {
  std::vector<Status> results =
      FanOut(parts, [txn](Participant* p) { return p->Abort(txn); });
  Status first_error;
  for (size_t i = 0; i < results.size(); ++i) {
    if (results[i].ok()) continue;
    if (first_error.ok()) {
      first_error = Status(results[i].code(), parts[i]->name() + ": " +
                                                  results[i].message());
    } else {
      first_error = Status(first_error.code(),
                           first_error.message() + "; abort also failed at " +
                               parts[i]->name() + ": " + results[i].message());
    }
  }
  MutexLock lock(mu_);
  log_.push_back({LogKind::kAbort, txn, 0, {}});
  active_.erase(txn);
  return first_error;
}

bool TwoPhaseCoordinator::CrashDueAt(Failpoint fp) {
  if (failpoint_ == fp) return true;
  // Lock order: mu_ -> FaultInjector::mu_ (the injector never calls
  // back into the coordinator, so the reverse order cannot occur).
  return injector_ != nullptr && injector_->ConsumeCoordinatorCrash(fp);
}

Status TwoPhaseCoordinator::Commit(TxnId txn) {
  std::vector<Participant*> parts;
  {
    MutexLock lock(mu_);
    auto it = active_.find(txn);
    if (it == active_.end()) {
      return Status::NotFound("unknown transaction " + std::to_string(txn));
    }
    parts = it->second.participants;
    if (CrashDueAt(Failpoint::kBeforePrepare)) {
      CrashLocked();
      return Status::Unavailable("coordinator crashed before prepare");
    }
  }

  // Phase 1: prepare everywhere, votes collected concurrently. An
  // optimization from the improved protocol [14]: a single-participant
  // transaction commits in one phase (no vote round, no prepare record).
  bool single = parts.size() <= 1;
  if (!single) {
    std::vector<Status> votes =
        FanOut(parts, [txn](Participant* p) { return p->Prepare(txn); });
    std::string failures;
    for (size_t i = 0; i < votes.size(); ++i) {
      if (votes[i].ok()) continue;
      if (failures.empty()) {
        failures = "prepare failed at " + parts[i]->name() + ": " +
                   votes[i].message();
      } else {
        failures += "; also failed at " + parts[i]->name() + ": " +
                    votes[i].message();
      }
    }
    if (!failures.empty()) {
      // Every voter (including late ones) has been awaited above; roll
      // all of them back. A failed rollback must not be swallowed
      // either, so it rides along in the message (PR 2 convention).
      Status abort_status = AbortEverywhere(txn, parts);
      if (!abort_status.ok()) {
        failures += "; rollback also failed: " + abort_status.message();
      }
      return Status::TransactionAborted(std::move(failures));
    }
    std::vector<std::string> names;
    names.reserve(parts.size());
    for (Participant* p : parts) names.push_back(p->name());
    MutexLock lock(mu_);
    log_.push_back({LogKind::kPrepared, txn, 0, std::move(names)});
  }

  {
    MutexLock lock(mu_);
    if (CrashDueAt(Failpoint::kAfterPrepare)) {
      CrashLocked();
      return Status::Unavailable(
          "coordinator crashed after prepare; transaction in doubt");
    }
  }

  uint64_t commit_id;
  if (single) {
    // One-phase path: the participant's own prepare+commit is the
    // commit decision, so the commit record is written only after it
    // succeeded — a failure leaves a clean presumed-abort log instead
    // of a commit record contradicted by a later abort record.
    {
      MutexLock lock(mu_);
      commit_id = AllocateCommitIdLocked();
    }
    if (!parts.empty()) {
      Participant* p = parts[0];
      Status s = p->Prepare(txn);
      if (s.ok()) s = p->Commit(txn, commit_id);
      if (!s.ok()) {
        Status abort_status = AbortEverywhere(txn, parts);
        std::string detail =
            "commit failed at " + p->name() + ": " + s.message();
        if (!abort_status.ok()) {
          detail += "; rollback also failed: " + abort_status.message();
        }
        // The allocated timestamp was never stamped onto any row (the
        // abort reverted the write set); retire it so the visibility
        // frontier moves past the gap.
        FinishCommitTs(commit_id);
        return Status::TransactionAborted(std::move(detail));
      }
    }
    MutexLock lock(mu_);
    log_.push_back({LogKind::kCommit, txn, commit_id, {}});
    if (CrashDueAt(Failpoint::kAfterCommitRecord)) {
      // The timestamp stays in-flight: the participant has stamped its
      // rows, but they remain invisible to new snapshots until
      // recovery resolves the transaction and finishes the commit.
      CrashLocked();
      return Status::Unavailable(
          "coordinator crashed after commit record; recovery will finish");
    }
    log_.push_back({LogKind::kEnd, txn, commit_id, {}});
    active_.erase(txn);
    FinishCommitLocked(commit_id);
    return Status::OK();
  }

  {
    MutexLock lock(mu_);
    commit_id = AllocateCommitIdLocked();
    log_.push_back({LogKind::kCommit, txn, commit_id, {}});
    if (CrashDueAt(Failpoint::kAfterCommitRecord)) {
      // In-flight timestamp survives the crash: no participant has
      // stamped yet, so nothing from this transaction is visible until
      // Recover() re-drives phase 2 and finishes the commit.
      CrashLocked();
      return Status::Unavailable(
          "coordinator crashed after commit record; recovery will finish");
    }
  }

  // Phase 2: apply everywhere, fanned out like the vote round. The
  // global decision is already durable; participant failures here are
  // infrastructure errors. The transaction stays active (no end record)
  // so a Commit retry — or recovery — finishes the stragglers; Prepare
  // idempotence makes that retry safe.
  std::vector<Status> results = FanOut(
      parts, [txn, commit_id](Participant* p) {
        return p->Commit(txn, commit_id);
      });
  std::string failures;
  for (size_t i = 0; i < results.size(); ++i) {
    if (results[i].ok()) continue;
    if (failures.empty()) {
      failures = "participant " + parts[i]->name() +
                 " failed after global commit: " + results[i].message();
    } else {
      failures += "; also " + parts[i]->name() + ": " + results[i].message();
    }
  }
  if (!failures.empty()) {
    // The decision is durable and every participant that did apply has
    // stamped a complete per-table write set, so the timestamp can
    // retire; stragglers are re-driven by a Commit retry or recovery
    // (each attempt allocates its own timestamp).
    FinishCommitTs(commit_id);
    return Status::Internal(std::move(failures));
  }
  MutexLock lock(mu_);
  log_.push_back({LogKind::kEnd, txn, commit_id, {}});
  active_.erase(txn);
  FinishCommitLocked(commit_id);
  return Status::OK();
}

Status TwoPhaseCoordinator::Abort(TxnId txn) {
  std::vector<Participant*> parts;
  {
    MutexLock lock(mu_);
    auto it = active_.find(txn);
    if (it == active_.end()) {
      return Status::NotFound("unknown transaction " + std::to_string(txn));
    }
    parts = it->second.participants;
  }
  return AbortEverywhere(txn, parts);
}

void TwoPhaseCoordinator::Crash() {
  MutexLock lock(mu_);
  CrashLocked();
}

void TwoPhaseCoordinator::CrashLocked() {
  active_.clear();
  recovery_participants_.clear();
  crashed_ = true;
  failpoint_ = Failpoint::kNone;
}

void TwoPhaseCoordinator::SetFailpoint(Failpoint fp) {
  MutexLock lock(mu_);
  failpoint_ = fp;
}

void TwoPhaseCoordinator::SetFaultInjector(FaultInjector* injector) {
  MutexLock lock(mu_);
  injector_ = injector;
}

void TwoPhaseCoordinator::SetVersionManager(mvcc::VersionManager* vm) {
  MutexLock lock(mu_);
  vm_ = vm;
}

uint64_t TwoPhaseCoordinator::AllocateCommitIdLocked() {
  if (vm_ != nullptr) {
    uint64_t cid = vm_->AllocateCommit();
    next_commit_id_ = cid + 1;
    return cid;
  }
  return next_commit_id_++;
}

void TwoPhaseCoordinator::FinishCommitLocked(uint64_t commit_id) {
  if (vm_ != nullptr) vm_->FinishCommit(commit_id);
}

void TwoPhaseCoordinator::FinishCommitTs(uint64_t commit_id) {
  MutexLock lock(mu_);
  FinishCommitLocked(commit_id);
}

void TwoPhaseCoordinator::RegisterRecoveryParticipant(
    Participant* participant) {
  MutexLock lock(mu_);
  recovery_participants_.push_back(participant);
}

Participant* TwoPhaseCoordinator::FindRecoveryParticipant(
    const std::string& name) const {
  for (Participant* p : recovery_participants_) {
    if (p->name() == name) return p;
  }
  return nullptr;
}

std::vector<TxnId> TwoPhaseCoordinator::InDoubtLocked() const {
  std::set<TxnId> prepared;
  std::set<TxnId> resolved;
  for (const LogRecord& rec : log_) {
    switch (rec.kind) {
      case LogKind::kPrepared:
        prepared.insert(rec.txn);
        break;
      case LogKind::kCommit:
      case LogKind::kAbort:
        resolved.insert(rec.txn);
        break;
      default:
        break;
    }
  }
  std::vector<TxnId> in_doubt;
  for (TxnId txn : prepared) {
    if (resolved.count(txn) == 0) in_doubt.push_back(txn);
  }
  return in_doubt;
}

std::vector<TxnId> TwoPhaseCoordinator::InDoubt() const {
  MutexLock lock(mu_);
  return InDoubtLocked();
}

std::vector<LogRecord> TwoPhaseCoordinator::log() const {
  MutexLock lock(mu_);
  return log_;
}

uint64_t TwoPhaseCoordinator::last_commit_id() const {
  MutexLock lock(mu_);
  return next_commit_id_ - 1;
}

Status TwoPhaseCoordinator::AbortInDoubt(TxnId txn) {
  std::vector<Participant*> parts;
  {
    MutexLock lock(mu_);
    std::vector<TxnId> in_doubt = InDoubtLocked();
    if (std::find(in_doubt.begin(), in_doubt.end(), txn) == in_doubt.end()) {
      return Status::NotFound("transaction not in doubt: " +
                              std::to_string(txn));
    }
    // Find its participants from the prepare record.
    for (const LogRecord& rec : log_) {
      if (rec.kind == LogKind::kPrepared && rec.txn == txn) {
        for (const std::string& name : rec.participants) {
          if (Participant* p = FindRecoveryParticipant(name)) {
            parts.push_back(p);
          }
        }
      }
    }
  }
  for (Participant* p : parts) {
    HANA_RETURN_IF_ERROR(p->Abort(txn));
  }
  MutexLock lock(mu_);
  log_.push_back({LogKind::kAbort, txn, 0, {}});
  return Status::OK();
}

Status TwoPhaseCoordinator::Recover() {
  // Presumed abort: transactions with a commit record roll forward;
  // everything else (including in-doubt) rolls back on every
  // participant. Recovery is sequential and iterates transactions in
  // id order — joint recovery is a rare administrative path and a
  // deterministic log matters more than its latency.
  std::map<TxnId, uint64_t> committed;
  std::set<TxnId> ended;
  std::map<TxnId, std::vector<std::string>> prepared;
  std::set<TxnId> seen;
  {
    MutexLock lock(mu_);
    for (const LogRecord& rec : log_) {
      seen.insert(rec.txn);
      switch (rec.kind) {
        case LogKind::kCommit:
          committed[rec.txn] = rec.commit_id;
          break;
        case LogKind::kEnd:
          ended.insert(rec.txn);
          break;
        case LogKind::kPrepared:
          prepared[rec.txn] = rec.participants;
          break;
        default:
          break;
      }
    }
  }
  for (TxnId txn : seen) {
    if (ended.count(txn) > 0) continue;  // Fully finished.
    auto commit_it = committed.find(txn);
    auto prep_it = prepared.find(txn);
    std::vector<Participant*> parts;
    {
      MutexLock lock(mu_);
      if (prep_it != prepared.end()) {
        for (const std::string& name : prep_it->second) {
          if (Participant* p = FindRecoveryParticipant(name)) {
            parts.push_back(p);
          }
        }
      } else {
        parts = recovery_participants_;
      }
    }
    if (commit_it != committed.end()) {
      for (Participant* p : parts) {
        HANA_RETURN_IF_ERROR(p->Commit(txn, commit_it->second));
      }
      MutexLock lock(mu_);
      log_.push_back({LogKind::kEnd, txn, commit_it->second, {}});
      // Resolve the in-doubt window: every participant has now stamped
      // (or re-stamped) the logged timestamp, so it becomes visible.
      // Idempotent for already-finished commits.
      FinishCommitLocked(commit_it->second);
    } else {
      for (Participant* p : parts) {
        HANA_RETURN_IF_ERROR(p->Abort(txn));
      }
      MutexLock lock(mu_);
      log_.push_back({LogKind::kAbort, txn, 0, {}});
      log_.push_back({LogKind::kEnd, txn, 0, {}});
    }
  }
  MutexLock lock(mu_);
  crashed_ = false;
  return Status::OK();
}

}  // namespace hana::txn
