#include "federation/adapter.h"

#include "common/strings.h"

namespace hana::federation {

std::string Capabilities::ToPropertyFile() const {
  auto line = [](const char* key, bool value) {
    return std::string(key) + " : " + (value ? "true" : "false") + "\n";
  };
  std::string out;
  out += line("CAP_SELECT", select);
  out += line("CAP_FILTERS", filters);
  out += line("CAP_PROJECTIONS", projections);
  out += line("CAP_JOINS", joins);
  out += line("CAP_JOINS_OUTER", outer_joins);
  out += line("CAP_SEMI_JOINS", semi_joins);
  out += line("CAP_AGGREGATES", aggregates);
  out += line("CAP_ORDER_BY", order_by);
  out += line("CAP_LIMIT", limit);
  out += line("CAP_INSERT", insert);
  out += line("CAP_TRANSACTIONS", transactions);
  out += line("CAP_REMOTE_CACHE", remote_cache);
  return out;
}

double TransferMs(const OdbcLinkOptions& link, size_t rows, size_t bytes) {
  return link.roundtrip_ms + static_cast<double>(rows) * link.per_row_ms +
         static_cast<double>(bytes) / (link.transfer_mbps * 1048.576);
}

size_t ApproxTableBytes(const storage::Table& table) {
  size_t bytes = 0;
  for (const auto& row : table.rows()) {
    for (const Value& v : row) {
      bytes += v.type() == DataType::kString ? v.string_value().size() + 4 : 8;
    }
  }
  return bytes;
}

}  // namespace hana::federation
