#include "federation/sda.h"

#include <algorithm>

#include "common/strings.h"

namespace hana::federation {

void SdaRuntime::SetVirtualTime(std::function<double()> now,
                                std::function<void(double)> credit) {
  MutexLock lock(dispatch_mu_);
  virtual_now_ = std::move(now);
  credit_ = std::move(credit);
}

void SdaRuntime::BeginConcurrentRegion() {
  MutexLock lock(dispatch_mu_);
  if (region_depth_++ == 0) branch_deltas_.clear();
}

void SdaRuntime::EndConcurrentRegion() {
  MutexLock lock(dispatch_mu_);
  if (region_depth_ == 0) return;
  if (--region_depth_ > 0) return;
  if (branch_deltas_.size() > 1 && credit_) {
    double sum = 0.0;
    double max = 0.0;
    for (double d : branch_deltas_) {
      sum += d;
      max = std::max(max, d);
    }
    // The branches were charged sequentially (dispatch is serialized);
    // concurrent execution costs only the slowest branch.
    credit_(max - sum);
  }
  branch_deltas_.clear();
}

void SdaRuntime::RecordBranch(double delta) {
  if (region_depth_ > 0) branch_deltas_.push_back(delta);
}

Status SdaRuntime::BindSource(const std::string& source_name,
                              std::unique_ptr<Adapter> adapter) {
  std::string key = ToUpper(source_name);
  MutexLock lock(registry_mu_);
  if (adapters_.count(key) > 0) {
    return Status::AlreadyExists("source already bound: " + source_name);
  }
  adapters_[key] = std::move(adapter);
  return Status::OK();
}

Result<Adapter*> SdaRuntime::AdapterForLocked(
    const std::string& source_name) const {
  auto it = adapters_.find(ToUpper(source_name));
  if (it == adapters_.end()) {
    return Status::NotFound("no adapter bound for source " + source_name);
  }
  return it->second.get();
}

Result<Adapter*> SdaRuntime::AdapterFor(const std::string& source_name) const {
  MutexLock lock(registry_mu_);
  return AdapterForLocked(source_name);
}

bool SdaRuntime::HasSource(const std::string& source_name) const {
  MutexLock lock(registry_mu_);
  return adapters_.count(ToUpper(source_name)) > 0;
}

StatementRemoteStats SdaRuntime::stats() const {
  MutexLock lock(dispatch_mu_);
  return stats_;
}

void SdaRuntime::ResetStats() {
  MutexLock lock(dispatch_mu_);
  stats_.Reset();
}

std::string SdaRuntime::SqlLiteral(const Value& v) {
  switch (v.type()) {
    case DataType::kString: {
      std::string out = "'";
      for (char c : v.string_value()) {
        if (c == '\'') out += '\'';
        out += c;
      }
      return out + "'";
    }
    case DataType::kDate:
      return "DATE '" + v.ToString() + "'";
    default:
      return v.ToString();
  }
}

Result<storage::Table> SdaRuntime::ExecuteRemoteQuery(
    const plan::LogicalOp& rq, const exec::PushdownInList* in_list,
    const storage::Table* relocated_rows) {
  // Adapter dispatch is serialized: the simulated engines mutate shared
  // state (buffer caches, the virtual clock) on every call. Concurrency
  // gains are modeled by EndConcurrentRegion's refund instead.
  MutexLock lock(dispatch_mu_);
  HANA_ASSIGN_OR_RETURN(Adapter * adapter, AdapterFor(rq.remote_source));

  std::string sql = rq.remote_sql;
  auto marker = sql.find("/*PUSHDOWN*/");
  if (marker != std::string::npos) {
    std::string replacement = "1 = 1";
    if (in_list != nullptr && !in_list->values.empty()) {
      std::vector<std::string> literals;
      literals.reserve(in_list->values.size());
      for (const Value& v : in_list->values) {
        literals.push_back(SqlLiteral(v));
      }
      replacement = in_list->column + " IN (" + Join(literals, ", ") + ")";
    }
    sql.replace(marker, 12, replacement);
  }

  if (relocated_rows != nullptr && !rq.relocation_table.empty()) {
    auto schema = std::make_shared<Schema>();
    for (const auto& col : relocated_rows->schema()->columns()) {
      // Strip qualifiers for the uploaded temp table.
      std::string base = col.name;
      auto pos = base.rfind('.');
      if (pos != std::string::npos) base = base.substr(pos + 1);
      schema->AddColumn({base, col.type, col.nullable});
    }
    HANA_RETURN_IF_ERROR(adapter->CreateTempTable(rq.relocation_table,
                                                  schema, *relocated_rows));
  }

  RemoteQuerySpec spec;
  spec.sql = sql;
  spec.use_cache = rq.use_remote_cache;
  spec.has_predicate = rq.remote_has_predicate ||
                       (in_list != nullptr && !in_list->values.empty());
  RemoteStats remote_stats;
  double before = virtual_now_ ? virtual_now_() : 0.0;
  HANA_ASSIGN_OR_RETURN(storage::Table table,
                        adapter->Execute(spec, &remote_stats));
  RecordBranch(virtual_now_ ? virtual_now_() - before
                            : remote_stats.remote_ms);
  stats_.remote_ms += remote_stats.remote_ms;
  stats_.remote_calls += 1;
  stats_.mapreduce_jobs += remote_stats.jobs;
  stats_.rows_fetched += remote_stats.rows;
  stats_.any_cache_hit |= remote_stats.from_cache;
  stats_.any_materialization |= remote_stats.materialized;
  return table;
}

Result<storage::Table> SdaRuntime::ExecuteVirtualFunction(
    const std::string& source, const std::string& configuration) {
  MutexLock lock(dispatch_mu_);
  HANA_ASSIGN_OR_RETURN(Adapter * adapter, AdapterFor(source));
  RemoteStats remote_stats;
  double before = virtual_now_ ? virtual_now_() : 0.0;
  HANA_ASSIGN_OR_RETURN(
      storage::Table table,
      adapter->ExecuteVirtualFunction(configuration, &remote_stats));
  RecordBranch(virtual_now_ ? virtual_now_() - before
                            : remote_stats.remote_ms);
  stats_.remote_ms += remote_stats.remote_ms;
  stats_.remote_calls += 1;
  stats_.rows_fetched += remote_stats.rows;
  return table;
}

}  // namespace hana::federation
