#ifndef HANA_FEDERATION_HIVE_ADAPTER_H_
#define HANA_FEDERATION_HIVE_ADAPTER_H_

#include <functional>
#include <map>
#include <string>

#include "common/util.h"
#include "federation/adapter.h"
#include "hadoop/hive.h"

namespace hana::federation {

/// Remote-materialization settings (Section 4.4). Disabled by default,
/// exactly as in the paper; the application additionally opts in per
/// query via WITH HINT (USE_REMOTE_CACHE).
struct RemoteCacheOptions {
  bool enable_remote_cache = false;
  double remote_cache_validity_seconds = 3600.0;
};

/// Per-cache-entry bookkeeping.
struct CacheEntry {
  std::string temp_table;
  double created_seconds = 0.0;
  size_t hits = 0;
};

/// The "hiveodbc" SDA adapter: ships HiveQL over a modeled ODBC link,
/// triggers MapReduce DAG execution in the Hive engine, and implements
/// remote materialization — query results cached in HDFS temp tables,
/// keyed by a hash of (statement, parameters, host).
class HiveAdapter : public Adapter {
 public:
  HiveAdapter(hadoop::HiveEngine* hive, SimClock* hana_clock,
              OdbcLinkOptions link = {}, std::string host = "hive1");

  const std::string& adapter_name() const override { return name_; }
  const Capabilities& capabilities() const override { return caps_; }

  [[nodiscard]] Result<std::shared_ptr<Schema>> FetchTableSchema(
      const std::string& remote_object) override;
  [[nodiscard]] Result<double> EstimateRows(const std::string& remote_object) override;
  [[nodiscard]] Result<storage::Table> Execute(const RemoteQuerySpec& spec,
                                 RemoteStats* stats) override;
  [[nodiscard]] Status CreateTempTable(const std::string& name,
                         std::shared_ptr<Schema> schema,
                         const storage::Table& rows) override;
  [[nodiscard]] Result<storage::Table> ExecuteVirtualFunction(
      const std::string& configuration, RemoteStats* stats) override;

  // ---- Remote-cache controls -------------------------------------------
  RemoteCacheOptions& cache_options() { return cache_options_; }
  /// Drops every materialized temp table.
  [[nodiscard]] Status ClearCache();
  size_t cache_entries() const { return cache_.size(); }
  /// Injectable time source for validity tests (seconds).
  void SetTimeSource(std::function<double()> now_seconds) {
    now_seconds_ = std::move(now_seconds);
  }

  /// Registers a native map-reduce job implementation that a virtual
  /// function configuration (hana.mapred.driver.class=X) can invoke.
  void RegisterMapReduceJob(
      const std::string& driver_class,
      std::function<Result<storage::Table>(hadoop::HiveEngine*)> runner);

  /// Cache key exactly as the paper specifies: a hash computed from the
  /// HiveQL statement, parameters and the host information.
  uint64_t CacheKey(const std::string& statement,
                    const std::string& parameters) const;

 private:
  /// True when the statement has a predicate — the cache "only
  /// materializes queries with predicates".
  static bool HasPredicate(const std::string& sql);

  /// Reads a materialized temp table back over the link (fetch task).
  [[nodiscard]] Result<storage::Table> FetchTempTable(const std::string& temp_table,
                                        RemoteStats* stats);

  std::string name_ = "hiveodbc";
  Capabilities caps_;
  hadoop::HiveEngine* hive_;
  SimClock* hana_clock_;
  OdbcLinkOptions link_;
  std::string host_;
  RemoteCacheOptions cache_options_;
  std::map<uint64_t, CacheEntry> cache_;
  std::function<double()> now_seconds_;
  std::map<std::string,
           std::function<Result<storage::Table>(hadoop::HiveEngine*)>>
      mapred_jobs_;
  size_t next_temp_id_ = 1;
};

}  // namespace hana::federation

#endif  // HANA_FEDERATION_HIVE_ADAPTER_H_
