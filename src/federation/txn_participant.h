#ifndef HANA_FEDERATION_TXN_PARTICIPANT_H_
#define HANA_FEDERATION_TXN_PARTICIPANT_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/sync.h"
#include "federation/adapter.h"
#include "txn/two_phase.h"

namespace hana::federation {

/// Enlists an SDA remote source in the platform's two-phase commit —
/// the write-back side of Table Relocation (Section 4.2): rows staged
/// for a remote object ride in the same distributed transaction as the
/// in-memory and extended-storage writes.
///
/// The protocol maps onto the adapter surface:
///  * Prepare — votes abort with kCapabilityError unless the adapter
///    declares `transactions` + `insert` (the loosely coupled Hive
///    source cannot enlist; the tightly integrated IQ adapter can),
///    then ships the staged rows to a per-transaction remote staging
///    table (`#txn_<id>_<object>`) over the ODBC link — durable on the
///    remote side but not yet visible.
///  * Commit — publishes an updated snapshot of the remote object
///    (committed rows so far + this transaction's rows) under its real
///    name; CreateTempTable's drop-and-recreate is the atomic switch.
///  * Abort — drops the local staging and truncates the remote staging
///    table (best effort: an unreachable remote is cleaned by the next
///    prepare that reuses the name).
///
/// Thread-safety: staging state is guarded by mu_, which is also held
/// across adapter calls so per-participant remote ships and publishes
/// serialize; injector calls (which may block on a hold latch) happen
/// with mu_ released. The coordinator's fan-out runs this participant
/// concurrently with other participants.
class RemoteSourceParticipant : public txn::Participant {
 public:
  RemoteSourceParticipant(std::string name, Adapter* adapter,
                          std::string remote_object,
                          std::shared_ptr<Schema> schema,
                          txn::FaultInjector* injector = nullptr)
      : name_(std::move(name)),
        adapter_(adapter),
        remote_object_(std::move(remote_object)),
        schema_(std::move(schema)),
        injector_(injector) {}

  const std::string& name() const override { return name_; }

  [[nodiscard]] Status StageInsert(txn::TxnId txn, std::vector<Value> row)
      EXCLUDES(mu_);

  [[nodiscard]] Status Prepare(txn::TxnId txn) override EXCLUDES(mu_);
  [[nodiscard]] Status Commit(txn::TxnId txn, uint64_t commit_id) override
      EXCLUDES(mu_);
  [[nodiscard]] Status Abort(txn::TxnId txn) override EXCLUDES(mu_);

  void SetFaultInjector(txn::FaultInjector* injector) { injector_ = injector; }

  /// Rows published to the remote object by committed transactions.
  size_t committed_rows() const EXCLUDES(mu_);

 private:
  struct Staged {
    std::vector<std::vector<Value>> inserts;
    bool prepared = false;
  };

  std::string StagingName(txn::TxnId txn) const {
    return "#txn_" + std::to_string(txn) + "_" + remote_object_;
  }

  std::string name_;
  Adapter* adapter_;
  std::string remote_object_;
  std::shared_ptr<Schema> schema_;
  txn::FaultInjector* injector_;
  /// Held across the adapter ship in Commit: rank 40 precedes
  /// sda.dispatch (50), matching the participant -> SDA call chain.
  mutable Mutex mu_{"txn.participant.remote", lock_rank::kTxnParticipant};
  std::map<txn::TxnId, Staged> staged_ GUARDED_BY(mu_);
  /// Snapshot of the remote object's committed contents; Commit
  /// republishes it plus the transaction's staged rows.
  std::vector<std::vector<Value>> committed_ GUARDED_BY(mu_);
};

}  // namespace hana::federation

#endif  // HANA_FEDERATION_TXN_PARTICIPANT_H_
