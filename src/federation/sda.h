#ifndef HANA_FEDERATION_SDA_H_
#define HANA_FEDERATION_SDA_H_

#include <map>
#include <memory>
#include <string>

#include "exec/operators.h"
#include "federation/adapter.h"
#include "plan/logical.h"

namespace hana::federation {

/// Aggregated remote statistics for one HANA statement.
struct StatementRemoteStats {
  double remote_ms = 0.0;
  size_t remote_calls = 0;
  size_t mapreduce_jobs = 0;
  size_t rows_fetched = 0;
  bool any_cache_hit = false;
  bool any_materialization = false;
  void Reset() { *this = StatementRemoteStats(); }
};

/// The Smart Data Access runtime: the registry binding remote-source
/// names to adapters, plus the execution entry point the HANA executor
/// calls for shipped subplans. It splices semijoin IN-lists into the
/// /*PUSHDOWN*/ marker and uploads relocated tables before execution.
class SdaRuntime {
 public:
  SdaRuntime() = default;

  /// Binds a remote source name (from CREATE REMOTE SOURCE) to an
  /// adapter instance. Takes ownership.
  Status BindSource(const std::string& source_name,
                    std::unique_ptr<Adapter> adapter);

  Result<Adapter*> AdapterFor(const std::string& source_name) const;
  bool HasSource(const std::string& source_name) const;

  /// Executes a kRemoteQuery logical node.
  Result<storage::Table> ExecuteRemoteQuery(
      const plan::LogicalOp& rq, const exec::PushdownInList* in_list,
      const storage::Table* relocated_rows);

  /// Runs a virtual (map-reduce) function at its source.
  Result<storage::Table> ExecuteVirtualFunction(
      const std::string& source, const std::string& configuration);

  StatementRemoteStats& stats() { return stats_; }

  /// Renders a Value as a SQL literal for IN-list splicing.
  static std::string SqlLiteral(const Value& v);

 private:
  std::map<std::string, std::unique_ptr<Adapter>> adapters_;
  StatementRemoteStats stats_;
};

}  // namespace hana::federation

#endif  // HANA_FEDERATION_SDA_H_
