#ifndef HANA_FEDERATION_SDA_H_
#define HANA_FEDERATION_SDA_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "exec/operators.h"
#include "federation/adapter.h"
#include "plan/logical.h"

namespace hana::federation {

/// Aggregated remote statistics for one HANA statement.
struct StatementRemoteStats {
  double remote_ms = 0.0;
  size_t remote_calls = 0;
  size_t mapreduce_jobs = 0;
  size_t rows_fetched = 0;
  bool any_cache_hit = false;
  bool any_materialization = false;
  void Reset() { *this = StatementRemoteStats(); }
};

/// The Smart Data Access runtime: the registry binding remote-source
/// names to adapters, plus the execution entry point the HANA executor
/// calls for shipped subplans. It splices semijoin IN-lists into the
/// /*PUSHDOWN*/ marker and uploads relocated tables before execution.
class SdaRuntime {
 public:
  SdaRuntime() = default;

  /// Binds a remote source name (from CREATE REMOTE SOURCE) to an
  /// adapter instance. Takes ownership.
  Status BindSource(const std::string& source_name,
                    std::unique_ptr<Adapter> adapter);

  Result<Adapter*> AdapterFor(const std::string& source_name) const;
  bool HasSource(const std::string& source_name) const;

  /// Executes a kRemoteQuery logical node.
  Result<storage::Table> ExecuteRemoteQuery(
      const plan::LogicalOp& rq, const exec::PushdownInList* in_list,
      const storage::Table* relocated_rows);

  /// Runs a virtual (map-reduce) function at its source.
  Result<storage::Table> ExecuteVirtualFunction(
      const std::string& source, const std::string& configuration);

  StatementRemoteStats& stats() { return stats_; }

  /// Injects the virtual-time probes used to account concurrent
  /// dispatch regions: `now` returns the statement's total virtual
  /// time, `credit` advances it — negative values refund time.
  void SetVirtualTime(std::function<double()> now,
                      std::function<void(double)> credit);

  /// Brackets a region whose remote dispatches are issued concurrently
  /// (Union Plan branches). Adapter calls stay serialized on the
  /// dispatch mutex — the simulated engines mutate shared caches — but
  /// on region end the elapsed virtual time is re-accounted from the
  /// sum of the branch latencies down to their max, as if the branches
  /// had truly overlapped. Regions nest; only the outermost refunds.
  void BeginConcurrentRegion();
  void EndConcurrentRegion();

  /// Serializes direct engine access that bypasses the adapter path
  /// (the platform scans extended-store tables in-process). Callers
  /// must hold this around such access when queries run in parallel.
  std::mutex& dispatch_mutex() { return dispatch_mu_; }

  /// RAII guard for direct engine access: holds the dispatch mutex for
  /// its lifetime and, inside a concurrent region, records the access's
  /// virtual-time delta as one branch so it participates in the
  /// max-of-latencies re-accounting like adapter dispatches do.
  class TrackedDispatch {
   public:
    explicit TrackedDispatch(SdaRuntime* sda)
        : sda_(sda), lock_(sda->dispatch_mu_),
          before_(sda->virtual_now_ ? sda->virtual_now_() : 0.0) {}
    ~TrackedDispatch() {
      if (sda_->virtual_now_) {
        sda_->RecordBranch(sda_->virtual_now_() - before_);
      }
    }
    TrackedDispatch(const TrackedDispatch&) = delete;
    TrackedDispatch& operator=(const TrackedDispatch&) = delete;

   private:
    SdaRuntime* sda_;
    std::lock_guard<std::mutex> lock_;
    double before_;
  };

  /// Renders a Value as a SQL literal for IN-list splicing.
  static std::string SqlLiteral(const Value& v);

 private:
  /// Records one dispatched branch's virtual-time delta when inside a
  /// concurrent region. Must be called with dispatch_mu_ held.
  void RecordBranch(double delta);

  std::map<std::string, std::unique_ptr<Adapter>> adapters_;
  StatementRemoteStats stats_;
  std::mutex dispatch_mu_;
  std::function<double()> virtual_now_;
  std::function<void(double)> credit_;
  int region_depth_ = 0;
  std::vector<double> branch_deltas_;
};

}  // namespace hana::federation

#endif  // HANA_FEDERATION_SDA_H_
