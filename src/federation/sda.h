#ifndef HANA_FEDERATION_SDA_H_
#define HANA_FEDERATION_SDA_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/sync.h"
#include "exec/operators.h"
#include "federation/adapter.h"
#include "plan/logical.h"

namespace hana::federation {

/// Aggregated remote statistics for one HANA statement.
struct StatementRemoteStats {
  double remote_ms = 0.0;
  size_t remote_calls = 0;
  size_t mapreduce_jobs = 0;
  size_t rows_fetched = 0;
  bool any_cache_hit = false;
  bool any_materialization = false;
  void Reset() { *this = StatementRemoteStats(); }
};

/// The Smart Data Access runtime: the registry binding remote-source
/// names to adapters, plus the execution entry point the HANA executor
/// calls for shipped subplans. It splices semijoin IN-lists into the
/// /*PUSHDOWN*/ marker and uploads relocated tables before execution.
class SdaRuntime {
 public:
  SdaRuntime() = default;

  /// Binds a remote source name (from CREATE REMOTE SOURCE) to an
  /// adapter instance. Takes ownership.
  [[nodiscard]] Status BindSource(const std::string& source_name,
                                  std::unique_ptr<Adapter> adapter)
      EXCLUDES(registry_mu_);

  [[nodiscard]] Result<Adapter*> AdapterFor(const std::string& source_name)
      const EXCLUDES(registry_mu_);
  bool HasSource(const std::string& source_name) const EXCLUDES(registry_mu_);

  /// Executes a kRemoteQuery logical node.
  [[nodiscard]] Result<storage::Table> ExecuteRemoteQuery(
      const plan::LogicalOp& rq, const exec::PushdownInList* in_list,
      const storage::Table* relocated_rows) EXCLUDES(dispatch_mu_);

  /// Runs a virtual (map-reduce) function at its source.
  [[nodiscard]] Result<storage::Table> ExecuteVirtualFunction(
      const std::string& source, const std::string& configuration)
      EXCLUDES(dispatch_mu_);

  /// Snapshot of the statement's remote statistics. Returned by value:
  /// the live struct is guarded by the dispatch mutex, so handing out a
  /// reference would invite unsynchronized reads during dispatch.
  StatementRemoteStats stats() const EXCLUDES(dispatch_mu_);
  void ResetStats() EXCLUDES(dispatch_mu_);

  /// Injects the virtual-time probes used to account concurrent
  /// dispatch regions: `now` returns the statement's total virtual
  /// time, `credit` advances it — negative values refund time.
  void SetVirtualTime(std::function<double()> now,
                      std::function<void(double)> credit)
      EXCLUDES(dispatch_mu_);

  /// Brackets a region whose remote dispatches are issued concurrently
  /// (Union Plan branches). Adapter calls stay serialized on the
  /// dispatch mutex — the simulated engines mutate shared caches — but
  /// on region end the elapsed virtual time is re-accounted from the
  /// sum of the branch latencies down to their max, as if the branches
  /// had truly overlapped. Regions nest; only the outermost refunds.
  void BeginConcurrentRegion() EXCLUDES(dispatch_mu_);
  void EndConcurrentRegion() EXCLUDES(dispatch_mu_);

  /// Serializes direct engine access that bypasses the adapter path
  /// (the platform scans extended-store tables in-process). Callers
  /// must hold this around such access when queries run in parallel.
  Mutex& dispatch_mutex() RETURN_CAPABILITY(dispatch_mu_) {
    return dispatch_mu_;
  }

  /// RAII guard for direct engine access: holds the dispatch mutex for
  /// its lifetime and, inside a concurrent region, records the access's
  /// virtual-time delta as one branch so it participates in the
  /// max-of-latencies re-accounting like adapter dispatches do.
  ///
  /// The analysis cannot model a capability acquired through a member
  /// lock of a *different* object (lock_ guards sda_->dispatch_mu_), so
  /// both special members opt out explicitly; the capability is held
  /// for the guard's whole lifetime by construction.
  class TrackedDispatch {
   public:
    explicit TrackedDispatch(SdaRuntime* sda) NO_THREAD_SAFETY_ANALYSIS
        : sda_(sda), lock_(sda->dispatch_mu_),
          before_(sda->virtual_now_ ? sda->virtual_now_() : 0.0) {}
    ~TrackedDispatch() NO_THREAD_SAFETY_ANALYSIS {
      if (sda_->virtual_now_) {
        sda_->RecordBranch(sda_->virtual_now_() - before_);
      }
    }
    TrackedDispatch(const TrackedDispatch&) = delete;
    TrackedDispatch& operator=(const TrackedDispatch&) = delete;

   private:
    SdaRuntime* sda_;
    MutexLock lock_;
    double before_;
  };

  /// Renders a Value as a SQL literal for IN-list splicing.
  static std::string SqlLiteral(const Value& v);

 private:
  /// Records one dispatched branch's virtual-time delta when inside a
  /// concurrent region.
  void RecordBranch(double delta) REQUIRES(dispatch_mu_);

  /// Looks up an adapter with registry_mu_ already held; shared by
  /// AdapterFor and the dispatch paths (which hold dispatch_mu_ and
  /// must respect the dispatch-before-registry lock order).
  Result<Adapter*> AdapterForLocked(const std::string& source_name) const
      REQUIRES(registry_mu_);

  /// Lock order: dispatch_mu_ may be held when registry_mu_ is
  /// acquired (dispatch paths resolve adapters), never the reverse.
  /// Neither is ever held while calling into TaskPool::mu_.
  mutable Mutex registry_mu_ ACQUIRED_AFTER(dispatch_mu_){
      "sda.registry", lock_rank::kSdaRegistry};
  std::map<std::string, std::unique_ptr<Adapter>> adapters_
      GUARDED_BY(registry_mu_);

  mutable Mutex dispatch_mu_{"sda.dispatch", lock_rank::kSdaDispatch};
  StatementRemoteStats stats_ GUARDED_BY(dispatch_mu_);
  std::function<double()> virtual_now_ GUARDED_BY(dispatch_mu_);
  std::function<void(double)> credit_ GUARDED_BY(dispatch_mu_);
  int region_depth_ GUARDED_BY(dispatch_mu_) = 0;
  std::vector<double> branch_deltas_ GUARDED_BY(dispatch_mu_);
};

}  // namespace hana::federation

#endif  // HANA_FEDERATION_SDA_H_
