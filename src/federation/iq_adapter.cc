#include "federation/iq_adapter.h"

namespace hana::federation {

IqAdapter::IqAdapter(extended::IqEngine* iq, SimClock* hana_clock,
                     OdbcLinkOptions link)
    : iq_(iq), hana_clock_(hana_clock), link_(link) {
  caps_.joins = true;
  caps_.outer_joins = true;
  caps_.semi_joins = true;
  caps_.aggregates = true;
  caps_.order_by = true;
  caps_.limit = true;
  caps_.insert = true;
  caps_.transactions = true;
  caps_.remote_cache = false;  // Unnecessary: the store is local disk.
}

Result<std::shared_ptr<Schema>> IqAdapter::FetchTableSchema(
    const std::string& remote_object) {
  HANA_ASSIGN_OR_RETURN(extended::ExtendedTable * table,
                        iq_->store()->GetTable(remote_object));
  return table->schema();
}

Result<double> IqAdapter::EstimateRows(const std::string& remote_object) {
  HANA_ASSIGN_OR_RETURN(extended::ExtendedTable * table,
                        iq_->store()->GetTable(remote_object));
  return static_cast<double>(table->live_rows());
}

Result<storage::Table> IqAdapter::Execute(const RemoteQuerySpec& spec,
                                          RemoteStats* stats) {
  double before = iq_->store()->clock().now_ms();
  HANA_ASSIGN_OR_RETURN(storage::Table table, iq_->ExecuteSql(spec.sql));
  double remote_ms = iq_->store()->clock().now_ms() - before;
  size_t bytes = ApproxTableBytes(table);
  hana_clock_->Advance(remote_ms +
                       TransferMs(link_, table.num_rows(), bytes));
  if (stats != nullptr) {
    stats->remote_ms = remote_ms;
    stats->rows = table.num_rows();
  }
  return table;
}

Status IqAdapter::CreateTempTable(const std::string& name,
                                  std::shared_ptr<Schema> schema,
                                  const storage::Table& rows) {
  hana_clock_->Advance(
      TransferMs(link_, rows.num_rows(), ApproxTableBytes(rows)));
  return iq_->CreateAndLoad(name, std::move(schema), rows.rows());
}

}  // namespace hana::federation
