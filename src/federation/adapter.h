#ifndef HANA_FEDERATION_ADAPTER_H_
#define HANA_FEDERATION_ADAPTER_H_

#include <map>
#include <memory>
#include <string>

#include "common/result.h"
#include "storage/column_vector.h"

namespace hana::federation {

/// Capability description of a remote source ("In the capability
/// property file one finds, e.g. CAP_JOINS : true", Section 4.2). The
/// optimizer only ships operators the adapter declares support for.
struct Capabilities {
  bool select = true;
  bool filters = true;
  bool projections = true;
  bool joins = false;        // CAP_JOINS
  bool outer_joins = false;  // CAP_JOINS_OUTER
  bool semi_joins = false;
  bool aggregates = false;
  bool order_by = false;
  bool limit = false;
  bool insert = false;
  bool transactions = false;
  bool remote_cache = false;  // Supports remote materialization.

  /// Renders the property-file form used in the paper.
  std::string ToPropertyFile() const;
};

/// One shipped remote execution request.
struct RemoteQuerySpec {
  std::string sql;
  bool use_cache = false;      // WITH HINT (USE_REMOTE_CACHE) present.
  bool has_predicate = false;  // Shipped plan applies some predicate.
};

/// Execution statistics returned alongside remote results.
struct RemoteStats {
  double remote_ms = 0.0;     // Virtual time spent on the remote system.
  size_t jobs = 0;            // MapReduce jobs triggered (Hive).
  bool from_cache = false;    // Served from a materialized temp table.
  bool materialized = false;  // This call created the materialization.
  size_t rows = 0;
};

/// SDA adapter interface: schema import, cost statistics, query
/// execution and (optionally) temp-table creation for the Table
/// Relocation strategy and map-reduce virtual functions.
class Adapter {
 public:
  virtual ~Adapter() = default;

  virtual const std::string& adapter_name() const = 0;
  virtual const Capabilities& capabilities() const = 0;

  /// Imports the schema of a remote object (CREATE VIRTUAL TABLE).
  [[nodiscard]] virtual Result<std::shared_ptr<Schema>> FetchTableSchema(
      const std::string& remote_object) = 0;

  /// Statistics for costing (row count from the remote metastore).
  [[nodiscard]] virtual Result<double> EstimateRows(const std::string& remote_object) = 0;

  /// Executes a shipped query; returns rows plus remote-side stats.
  [[nodiscard]] virtual Result<storage::Table> Execute(const RemoteQuerySpec& spec,
                                         RemoteStats* stats) = 0;

  /// Uploads local rows as a remote temp table (Table Relocation).
  [[nodiscard]] virtual Status CreateTempTable(const std::string& name,
                                 std::shared_ptr<Schema> schema,
                                 const storage::Table& rows) = 0;

  /// Runs a registered map-reduce job exposed as a virtual function.
  [[nodiscard]] virtual Result<storage::Table> ExecuteVirtualFunction(
      const std::string& configuration, RemoteStats* stats) {
    (void)configuration;
    (void)stats;
    return Status::Unimplemented(adapter_name() +
                                 " does not support virtual functions");
  }
};

/// Latency model of the ODBC connection between HANA and a remote
/// source: a fixed round-trip per call plus per-row and per-byte
/// transfer costs, charged as virtual time. The per-row cost models
/// ODBC result-set marshalling (~7k rows/s for the wide intermediate
/// rows Hive returns), which is what makes fetching large federated
/// intermediates expensive relative to small aggregate results.
struct OdbcLinkOptions {
  double roundtrip_ms = 25.0;
  double per_row_ms = 0.15;
  double transfer_mbps = 40.0;
};

/// Computes the virtual transfer time for a result set.
double TransferMs(const OdbcLinkOptions& link, size_t rows, size_t bytes);

/// Rough serialized size of a table (for transfer costing).
size_t ApproxTableBytes(const storage::Table& table);

}  // namespace hana::federation

#endif  // HANA_FEDERATION_ADAPTER_H_
