#ifndef HANA_FEDERATION_IQ_ADAPTER_H_
#define HANA_FEDERATION_IQ_ADAPTER_H_

#include <string>

#include "common/util.h"
#include "extended/iq_engine.h"
#include "federation/adapter.h"

namespace hana::federation {

/// Adapter for the natively integrated extended storage. Unlike the
/// loosely coupled Hive source it supports the full push-down surface —
/// inserts, transactions, joins, aggregates, order-by — reflecting the
/// tight HANA/IQ integration of Section 3.1.
class IqAdapter : public Adapter {
 public:
  IqAdapter(extended::IqEngine* iq, SimClock* hana_clock,
            OdbcLinkOptions link = {.roundtrip_ms = 1.0,
                                    .per_row_ms = 0.0005,
                                    .transfer_mbps = 400.0});

  const std::string& adapter_name() const override { return name_; }
  const Capabilities& capabilities() const override { return caps_; }

  [[nodiscard]] Result<std::shared_ptr<Schema>> FetchTableSchema(
      const std::string& remote_object) override;
  [[nodiscard]] Result<double> EstimateRows(const std::string& remote_object) override;
  [[nodiscard]] Result<storage::Table> Execute(const RemoteQuerySpec& spec,
                                 RemoteStats* stats) override;
  [[nodiscard]] Status CreateTempTable(const std::string& name,
                         std::shared_ptr<Schema> schema,
                         const storage::Table& rows) override;

  extended::IqEngine* iq() const { return iq_; }

 private:
  std::string name_ = "iq";
  Capabilities caps_;
  extended::IqEngine* iq_;
  SimClock* hana_clock_;
  OdbcLinkOptions link_;
};

}  // namespace hana::federation

#endif  // HANA_FEDERATION_IQ_ADAPTER_H_
