#include "federation/txn_participant.h"

#include "txn/fault_injection.h"

namespace hana::federation {

namespace {

storage::Table ToTable(std::shared_ptr<Schema> schema,
                       const std::vector<std::vector<Value>>& rows) {
  storage::Table table(std::move(schema));
  for (const auto& row : rows) table.AppendRow(row);
  return table;
}

}  // namespace

Status RemoteSourceParticipant::StageInsert(txn::TxnId txn,
                                            std::vector<Value> row) {
  if (row.size() != schema_->num_columns()) {
    return Status::InvalidArgument("row arity mismatch");
  }
  MutexLock lock(mu_);
  staged_[txn].inserts.push_back(std::move(row));
  return Status::OK();
}

Status RemoteSourceParticipant::Prepare(txn::TxnId txn) {
  {
    MutexLock lock(mu_);
    auto it = staged_.find(txn);
    if (it != staged_.end() && it->second.prepared) return Status::OK();
  }
  if (injector_ != nullptr) {
    HANA_RETURN_IF_ERROR(
        injector_->OnCall(txn::FaultOp::kPrepare, name_, txn));
  }
  const Capabilities& caps = adapter_->capabilities();
  if (!caps.transactions || !caps.insert) {
    return Status::CapabilityError(
        name_ + ": remote source " + adapter_->adapter_name() +
        " does not support transactional writes (CAP_TRANSACTIONS)");
  }
  // mu_ is held across the adapter call: it serializes remote staging
  // and publishes per participant (the injector call above, which may
  // block on a latch, already happened lock-free).
  MutexLock lock(mu_);
  auto it = staged_.find(txn);
  if (it == staged_.end()) return Status::OK();  // Nothing staged here.
  HANA_RETURN_IF_ERROR(adapter_->CreateTempTable(
      StagingName(txn), schema_, ToTable(schema_, it->second.inserts)));
  it->second.prepared = true;
  return Status::OK();
}

Status RemoteSourceParticipant::Commit(txn::TxnId txn, uint64_t commit_id) {
  (void)commit_id;
  if (injector_ != nullptr) {
    HANA_RETURN_IF_ERROR(injector_->OnCall(txn::FaultOp::kCommit, name_, txn));
  }
  MutexLock lock(mu_);
  auto it = staged_.find(txn);
  if (it == staged_.end()) return Status::OK();
  // Publish the new snapshot under the real name; the staged rows only
  // join committed_ once the publish succeeded, so a failed publish can
  // be retried by recovery without duplicating rows.
  std::vector<std::vector<Value>> snapshot = committed_;
  snapshot.insert(snapshot.end(), it->second.inserts.begin(),
                  it->second.inserts.end());
  HANA_RETURN_IF_ERROR(adapter_->CreateTempTable(remote_object_, schema_,
                                                 ToTable(schema_, snapshot)));
  committed_ = std::move(snapshot);
  staged_.erase(it);
  return Status::OK();
}

Status RemoteSourceParticipant::Abort(txn::TxnId txn) {
  if (injector_ != nullptr) {
    HANA_RETURN_IF_ERROR(injector_->OnCall(txn::FaultOp::kAbort, name_, txn));
  }
  MutexLock lock(mu_);
  auto it = staged_.find(txn);
  if (it == staged_.end()) return Status::OK();
  bool shipped = it->second.prepared;
  staged_.erase(it);
  if (shipped) {
    // Truncate the remote staging table so the undoable rows cannot
    // leak; a later transaction reusing the name overwrites it anyway.
    HANA_RETURN_IF_ERROR(
        adapter_->CreateTempTable(StagingName(txn), schema_, ToTable(schema_, {})));
  }
  return Status::OK();
}

size_t RemoteSourceParticipant::committed_rows() const {
  MutexLock lock(mu_);
  return committed_.size();
}

}  // namespace hana::federation
