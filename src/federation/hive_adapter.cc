#include "federation/hive_adapter.h"

#include <chrono>

#include "common/strings.h"
#include "hadoop/serde.h"

namespace hana::federation {

namespace {

double WallSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

HiveAdapter::HiveAdapter(hadoop::HiveEngine* hive, SimClock* hana_clock,
                         OdbcLinkOptions link, std::string host)
    : hive_(hive),
      hana_clock_(hana_clock),
      link_(link),
      host_(std::move(host)),
      now_seconds_(WallSeconds) {
  // Hive via ODBC: selects with filters, projections, joins (inner and
  // outer), semi-join reduction, aggregation and limit — but no
  // transactions or updates (Section 4.2).
  caps_.joins = true;
  caps_.outer_joins = true;
  caps_.semi_joins = true;
  caps_.aggregates = true;
  caps_.order_by = false;  // Paper removes ORDER BY from shipped queries.
  caps_.limit = true;
  caps_.insert = false;
  caps_.transactions = false;
  caps_.remote_cache = true;
}

Result<std::shared_ptr<Schema>> HiveAdapter::FetchTableSchema(
    const std::string& remote_object) {
  hana_clock_->Advance(link_.roundtrip_ms);
  HANA_ASSIGN_OR_RETURN(const hadoop::HiveTable* table,
                        hive_->GetTable(remote_object));
  return table->schema;
}

Result<double> HiveAdapter::EstimateRows(const std::string& remote_object) {
  HANA_ASSIGN_OR_RETURN(hadoop::HiveTableStats stats,
                        hive_->Stats(remote_object));
  return static_cast<double>(stats.row_count);
}

uint64_t HiveAdapter::CacheKey(const std::string& statement,
                               const std::string& parameters) const {
  return Fnv1a64(statement + "\x1f" + parameters + "\x1f" + host_);
}

bool HiveAdapter::HasPredicate(const std::string& sql) {
  return ToUpper(sql).find(" WHERE ") != std::string::npos;
}

Result<storage::Table> HiveAdapter::FetchTempTable(
    const std::string& temp_table, RemoteStats* stats) {
  // A simple fetch task over the materialized temp table: no MapReduce
  // DAG (Figure 13's single Virtual Table node).
  HANA_ASSIGN_OR_RETURN(const hadoop::HiveTable* temp,
                        hive_->GetTable(temp_table));
  HANA_ASSIGN_OR_RETURN(std::vector<std::string> lines,
                        hive_->hdfs()->ReadFile(temp->path));
  storage::Table table(temp->schema);
  size_t bytes = 0;
  for (const std::string& line : lines) {
    bytes += line.size() + 1;
    HANA_ASSIGN_OR_RETURN(std::vector<Value> row,
                          hadoop::ParseRow(line, *temp->schema));
    table.AppendRow(std::move(row));
  }
  double fetch_ms = static_cast<double>(bytes) /
                    (hive_->mapreduce()->config().map_mbps * 1048.576);
  hive_->mapreduce()->ChargeClusterTime(fetch_ms);
  hana_clock_->Advance(fetch_ms + TransferMs(link_, table.num_rows(), bytes));
  if (stats != nullptr) {
    stats->remote_ms += fetch_ms;
    stats->rows = table.num_rows();
  }
  return table;
}

Status HiveAdapter::ClearCache() {
  for (const auto& [key, entry] : cache_) {
    (void)hive_->DropTable(entry.temp_table);
  }
  cache_.clear();
  return Status::OK();
}

Result<storage::Table> HiveAdapter::Execute(const RemoteQuerySpec& spec,
                                            RemoteStats* stats) {
  bool cache_eligible = spec.use_cache &&
                        cache_options_.enable_remote_cache &&
                        (spec.has_predicate || HasPredicate(spec.sql));
  if (cache_eligible) {
    uint64_t key = CacheKey(spec.sql, "");
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      double age = now_seconds_() - it->second.created_seconds;
      if (age <= cache_options_.remote_cache_validity_seconds) {
        ++it->second.hits;
        if (stats != nullptr) stats->from_cache = true;
        return FetchTempTable(it->second.temp_table, stats);
      }
      // Stale: discard and re-materialize a fresh copy.
      (void)hive_->DropTable(it->second.temp_table);
      cache_.erase(it);
    }
    // Miss: materialize via CTAS (the single-time overhead of Figure
    // 15), then serve directly from the temp table.
    std::string temp_name =
        StrFormat("hana_rm_%016llx_%zu",
                  static_cast<unsigned long long>(key), next_temp_id_++);
    HANA_ASSIGN_OR_RETURN(std::string created,
                          hive_->CreateTableAsSelect(temp_name, spec.sql));
    cache_[key] = {created, now_seconds_(), 0};
    if (stats != nullptr) stats->materialized = true;
    return FetchTempTable(created, stats);
  }

  // Normal execution: ship the statement, run the MapReduce DAG.
  HANA_ASSIGN_OR_RETURN(hadoop::HiveResult result,
                        hive_->ExecuteQuery(spec.sql));
  size_t bytes = ApproxTableBytes(result.table);
  hana_clock_->Advance(TransferMs(link_, result.table.num_rows(), bytes));
  if (stats != nullptr) {
    stats->remote_ms = result.simulated_ms;
    stats->jobs = result.num_jobs;
    stats->rows = result.table.num_rows();
  }
  return result.table;
}

Status HiveAdapter::CreateTempTable(const std::string& name,
                                    std::shared_ptr<Schema> schema,
                                    const storage::Table& rows) {
  if (hive_->GetTable(name).ok()) {
    HANA_RETURN_IF_ERROR(hive_->DropTable(name));
  }
  HANA_RETURN_IF_ERROR(hive_->CreateTable(name, std::move(schema),
                                          /*temporary=*/true));
  // Upload over the ODBC link.
  hana_clock_->Advance(
      TransferMs(link_, rows.num_rows(), ApproxTableBytes(rows)));
  return hive_->LoadRows(name, rows.rows());
}

void HiveAdapter::RegisterMapReduceJob(
    const std::string& driver_class,
    std::function<Result<storage::Table>(hadoop::HiveEngine*)> runner) {
  mapred_jobs_[driver_class] = std::move(runner);
}

Result<storage::Table> HiveAdapter::ExecuteVirtualFunction(
    const std::string& configuration, RemoteStats* stats) {
  // Parse "hana.mapred.driver.class = com.example.Driver; ..." pairs.
  std::string driver;
  for (const std::string& kv : Split(configuration, ';')) {
    auto eq = kv.find('=');
    if (eq == std::string::npos) continue;
    std::string key = Trim(kv.substr(0, eq));
    if (EqualsIgnoreCase(key, "hana.mapred.driver.class")) {
      driver = Trim(kv.substr(eq + 1));
    }
  }
  if (driver.empty()) {
    return Status::InvalidArgument(
        "virtual function configuration lacks hana.mapred.driver.class");
  }
  auto it = mapred_jobs_.find(driver);
  if (it == mapred_jobs_.end()) {
    return Status::NotFound("no registered map-reduce job for driver " +
                            driver);
  }
  HANA_ASSIGN_OR_RETURN(storage::Table table, it->second(hive_));
  size_t bytes = ApproxTableBytes(table);
  hana_clock_->Advance(TransferMs(link_, table.num_rows(), bytes));
  if (stats != nullptr) stats->rows = table.num_rows();
  return table;
}

}  // namespace hana::federation
