#ifndef HANA_PLATFORM_PLATFORM_H_
#define HANA_PLATFORM_PLATFORM_H_

#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "common/sync.h"
#include "common/util.h"
#include "exec/executor.h"
#include "exec/operators.h"
#include "extended/iq_engine.h"
#include "federation/hive_adapter.h"
#include "federation/sda.h"
#include "hadoop/hive.h"
#include "optimizer/optimizer.h"
#include "txn/two_phase.h"

namespace hana::platform {

/// Construction-time options for one platform instance.
struct PlatformOptions {
  /// Directory for the extended store's files; empty = a fresh
  /// directory under the system temp path.
  std::string workspace_dir;
  /// Attach the IQ-style extended storage (Section 3.1).
  bool attach_extended = true;
  /// Start the embedded Hadoop substrate (HDFS + MapReduce + Hive).
  bool start_hadoop = true;
  extended::ExtendedStoreOptions extended_options;
  hadoop::HdfsOptions hdfs_options;
  hadoop::ClusterConfig cluster;
  federation::OdbcLinkOptions hive_link;
  /// Degree of parallelism for query execution (morsel-driven scans,
  /// concurrent federation dispatch). 0 = HANA_THREADS env variable
  /// when set, else the hardware concurrency.
  size_t num_threads = 0;
  /// Rows per morsel for partitioned scans. 0 = built-in default.
  size_t morsel_rows = 0;
};

/// Timing and provenance of one executed statement. Local time is
/// measured wall-clock; remote time is deterministic virtual time
/// accumulated by the simulated substrate cost models.
struct QueryMetrics {
  double local_ms = 0.0;
  double simulated_remote_ms = 0.0;
  double total_ms = 0.0;
  size_t rows = 0;
  size_t remote_calls = 0;
  size_t mapreduce_jobs = 0;
  bool remote_cache_hit = false;
  bool remote_materialization = false;
};

struct ExecResult {
  storage::Table table;
  QueryMetrics metrics;
  std::string message;  // For DDL/DML statements.
};

/// The SAP HANA data platform facade: the single point of access for
/// applications (Section 2). Hosts the in-memory engines, the extended
/// storage, the embedded Hadoop substrate and the SDA federation layer,
/// and executes SQL across all of them.
class Platform : public exec::ExecContext {
 public:
  explicit Platform(PlatformOptions options = {});
  ~Platform() override;

  Platform(const Platform&) = delete;
  Platform& operator=(const Platform&) = delete;

  /// Executes one SQL statement (DDL, DML or query).
  [[nodiscard]] Result<ExecResult> Execute(const std::string& sql);

  /// Convenience: executes a query, returning only the result table.
  [[nodiscard]] Result<storage::Table> Query(const std::string& sql);

  /// Executes each ';'-separated statement of a script.
  [[nodiscard]] Status Run(const std::string& script);

  /// EXPLAIN: the optimized plan for a SELECT.
  [[nodiscard]] Result<std::string> Explain(const std::string& sql);

  /// Platform configuration parameters:
  ///   enable_remote_cache      = true|false (Section 4.4)
  ///   remote_cache_validity    = seconds
  ///   threads                  = degree of parallelism (0 = default)
  ///   morsel_rows              = rows per scan morsel (0 = default)
  ///   executor                 = pipeline|fused|serial pipeline-DAG
  ///                              scheduling mode (results identical)
  ///   parallel_join            = on|off morsel-parallel radix hash join
  ///   parallel_agg             = on|off radix-partitioned two-phase
  ///                              aggregation with vectorized key hashing
  ///                              (off = boxed serial-fold baseline;
  ///                              results identical either way)
  ///   agg_partitions           = radix partitions for aggregate sinks
  ///                              (0 = optimizer/cardinality default)
  ///   parallel_merge           = on|off online parallel delta merge
  ///                              (off = serial remap-table baseline)
  ///   merge_threshold_rows     = auto-merge a column table (or hot
  ///                              hybrid partition) after an INSERT
  ///                              leaves >= this many delta rows
  ///                              (0 = auto-merge disabled)
  [[nodiscard]] Status SetParameter(const std::string& name, const std::string& value);

  size_t degree_of_parallelism() const { return dop_; }

  // ---- Component access -----------------------------------------------
  catalog::Catalog& catalog() { return *catalog_; }
  federation::SdaRuntime& sda() { return sda_; }
  optimizer::OptimizerOptions& optimizer_options() { return opt_options_; }
  txn::TwoPhaseCoordinator& coordinator() { return coordinator_; }
  extended::IqEngine* iq() { return iq_.get(); }
  hadoop::Hdfs* hdfs() { return hdfs_.get(); }
  hadoop::HiveEngine* hive() { return hive_.get(); }
  hadoop::MapReduceEngine* mapreduce() { return mapreduce_.get(); }
  SimClock& clock() { return clock_; }
  const QueryMetrics& last_metrics() const { return last_metrics_; }

  /// Per-pipeline stats of the last SELECT (empty when it ran through
  /// the serial Volcano fallback).
  const std::vector<exec::PipelineStats>& last_pipeline_stats() const {
    return last_pipeline_stats_;
  }

  /// Registers a native map-reduce job runnable through CREATE VIRTUAL
  /// FUNCTION configurations (driver-class dispatch).
  [[nodiscard]] Status RegisterMapReduceJob(
      const std::string& driver_class,
      std::function<Result<storage::Table>(hadoop::HiveEngine*)> runner);

  // ---- exec::ExecContext ------------------------------------------------
  /// Pins the statement to the global version manager's last-visible
  /// timestamp and registers it in the active-snapshot set, holding the
  /// delta-merge watermark back while the statement runs.
  ReadLease AcquireReadLease() override;
  [[nodiscard]] Result<exec::ChunkStream> OpenScan(const plan::LogicalOp& scan) override;
  [[nodiscard]] Result<exec::ChunkStream> OpenScanAt(
      const plan::LogicalOp& scan, const mvcc::ReadView& view) override;
  [[nodiscard]] Result<exec::ChunkStream> OpenRemoteQuery(
      const plan::LogicalOp& rq, const exec::PushdownInList* in_list,
      const storage::Table* relocated_rows) override;
  [[nodiscard]] Result<exec::ChunkStream> OpenTableFunction(
      const plan::LogicalOp& fn) override;
  exec::ParallelPolicy parallel_policy() override;
  [[nodiscard]] Result<std::optional<exec::PartitionSource>> OpenPartitionedScan(
      const plan::LogicalOp& scan, size_t morsel_rows) override;
  [[nodiscard]] Result<std::optional<exec::PartitionSource>>
  OpenPartitionedScanAt(const plan::LogicalOp& scan, size_t morsel_rows,
                        const mvcc::ReadView& view) override;
  void BeginConcurrentRemoteDispatch() override;
  void EndConcurrentRemoteDispatch() override;

 private:
  [[nodiscard]] Result<ExecResult> ExecuteSelect(const sql::SelectStmt& stmt);
  [[nodiscard]] Result<ExecResult> ExecuteInsert(const sql::InsertStmt& stmt);
  [[nodiscard]] Result<ExecResult> ExecuteDelete(const sql::DeleteStmt& stmt);
  [[nodiscard]] Result<ExecResult> ExecuteUpdate(const sql::UpdateStmt& stmt);
  [[nodiscard]] Status HandleCreateRemoteSource(const sql::CreateRemoteSourceStmt& stmt);
  [[nodiscard]] Status HandleCreateVirtualTable(const sql::CreateVirtualTableStmt& stmt);
  [[nodiscard]] Result<plan::LogicalOpPtr> PlanSelect(const sql::SelectStmt& stmt);
  double VirtualNow() const;

  /// Statement-scoped snapshot reuse: a statement whose plan opens the
  /// same table through several scan pipelines (self-joins, unions,
  /// morsel sources) shares one pinned TableReadSnapshot per
  /// (table, view) instead of re-pinning per pipeline. The cache is
  /// reset when the next statement acquires its read lease; entries are
  /// keyed by the full view (read_ts + txn) so concurrent statements
  /// with different views can never alias.
  std::shared_ptr<const storage::TableReadSnapshot> SnapshotFor(
      const storage::ColumnTable* table, const mvcc::ReadView& view);

  PlatformOptions options_;
  SimClock clock_;  // Shared virtual clock for every simulated substrate.
  std::unique_ptr<extended::ExtendedStore> extended_store_;
  std::unique_ptr<extended::IqEngine> iq_;
  std::unique_ptr<hadoop::Hdfs> hdfs_;
  std::unique_ptr<hadoop::MapReduceEngine> mapreduce_;
  std::unique_ptr<hadoop::HiveEngine> hive_;
  std::unique_ptr<catalog::Catalog> catalog_;
  federation::SdaRuntime sda_;
  txn::TwoPhaseCoordinator coordinator_;
  optimizer::OptimizerOptions opt_options_;
  size_t dop_ = 1;
  size_t morsel_rows_ = exec::kDefaultMorselRows;
  bool parallel_join_ = true;
  bool parallel_agg_ = true;
  size_t agg_partitions_ = 0;  // 0 = optimizer/cardinality default.
  bool parallel_merge_ = true;
  exec::ExecutorMode executor_mode_ = exec::ExecutorMode::kPipeline;
  size_t merge_threshold_rows_ = 0;  // 0 = auto-merge disabled.
  QueryMetrics last_metrics_;
  std::vector<exec::PipelineStats> last_pipeline_stats_;
  std::vector<federation::HiveAdapter*> hive_adapters_;  // Not owned.

  using SnapshotKey = std::tuple<const storage::ColumnTable*,
                                 mvcc::Timestamp, uint64_t>;
  mutable Mutex snapshot_cache_mu_{"platform.snapshot_cache",
                                   lock_rank::kPlatformSnapshot};
  std::map<SnapshotKey, std::shared_ptr<const storage::TableReadSnapshot>>
      snapshot_cache_ GUARDED_BY(snapshot_cache_mu_);
};

}  // namespace hana::platform

#endif  // HANA_PLATFORM_PLATFORM_H_
