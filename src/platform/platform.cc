#include "platform/platform.h"

#include <cctype>
#include <deque>
#include <filesystem>

#include "common/cpu_dispatch.h"
#include "common/strings.h"
#include "exec/evaluator.h"
#include "federation/iq_adapter.h"
#include "plan/binder.h"
#include "sql/parser.h"

namespace hana::platform {

namespace {

namespace fs = std::filesystem;

/// Builds a chunk stream over a materialized table, restamped with the
/// plan's schema.
exec::ChunkStream StreamTable(std::shared_ptr<storage::Table> table,
                              std::shared_ptr<Schema> schema) {
  auto position = std::make_shared<size_t>(0);
  return [table = std::move(table), schema = std::move(schema),
          position]() -> Result<std::optional<storage::Chunk>> {
    if (*position >= table->num_rows()) {
      return std::optional<storage::Chunk>();
    }
    storage::Chunk chunk = storage::Chunk::Empty(schema);
    size_t end =
        std::min(table->num_rows(), *position + storage::kDefaultChunkRows);
    for (size_t r = *position; r < end; ++r) chunk.AppendRow(table->row(r));
    *position = end;
    return std::optional<storage::Chunk>(std::move(chunk));
  };
}

exec::ChunkStream StreamChunks(std::shared_ptr<std::deque<storage::Chunk>> q) {
  return [q]() -> Result<std::optional<storage::Chunk>> {
    if (q->empty()) return std::optional<storage::Chunk>();
    storage::Chunk chunk = std::move(q->front());
    q->pop_front();
    return std::optional<storage::Chunk>(std::move(chunk));
  };
}

}  // namespace

Platform::Platform(PlatformOptions options) : options_(std::move(options)) {
  if (options_.workspace_dir.empty()) {
    options_.workspace_dir =
        (fs::temp_directory_path() /
         ("hana_platform_" + std::to_string(::getpid()) + "_" +
          // lint: reinterpret_cast allowed — pointer identity only, as a
          // unique workspace-name suffix; never dereferenced.
          std::to_string(reinterpret_cast<uintptr_t>(this) & 0xffff)))
            .string();
  }
  if (options_.attach_extended) {
    extended::ExtendedStoreOptions ext = options_.extended_options;
    if (ext.directory.empty()) {
      ext.directory = options_.workspace_dir + "/extended";
    }
    extended_store_ = std::make_unique<extended::ExtendedStore>(ext);
    iq_ = std::make_unique<extended::IqEngine>(extended_store_.get());
  }
  if (options_.start_hadoop) {
    hdfs_ = std::make_unique<hadoop::Hdfs>(options_.hdfs_options);
    mapreduce_ = std::make_unique<hadoop::MapReduceEngine>(
        hdfs_.get(), options_.cluster, &clock_);
    hive_ = std::make_unique<hadoop::HiveEngine>(hdfs_.get(),
                                                 mapreduce_.get());
  }
  catalog_ = std::make_unique<catalog::Catalog>(iq_.get());
  if (iq_ != nullptr) {
    // The extended storage is natively integrated: its adapter is bound
    // automatically under the reserved source name EXTENDED.
    auto adapter =
        std::make_unique<federation::IqAdapter>(iq_.get(), &clock_);
    // lint: IgnoreStatus allowed — the registry is empty at
    // construction, so the reserved name cannot collide (BindSource's
    // only failure mode); a second IQ engine is impossible here.
    IgnoreStatus(sda_.BindSource("EXTENDED", std::move(adapter)));
  }
  dop_ = options_.num_threads > 0 ? options_.num_threads
                                  : TaskPool::DefaultDop();
  if (options_.morsel_rows > 0) morsel_rows_ = options_.morsel_rows;
  sda_.SetVirtualTime([this] { return VirtualNow(); },
                      [this](double ms) { clock_.Advance(ms); });
  // Commit ids issued by this platform's coordinator are MVCC commit
  // timestamps from the global version manager — the same timestamp
  // domain statements read at (AcquireReadLease) and column tables
  // stamp with by default.
  coordinator_.SetVersionManager(&mvcc::VersionManager::Global());
}

Platform::~Platform() = default;

double Platform::VirtualNow() const {
  double now = clock_.now_ms();
  if (extended_store_ != nullptr) {
    now += extended_store_->clock().now_ms();
  }
  return now;
}

Result<plan::LogicalOpPtr> Platform::PlanSelect(const sql::SelectStmt& stmt) {
  HANA_ASSIGN_OR_RETURN(plan::LogicalOpPtr logical,
                        plan::BindSelectStatement(*catalog_, stmt));
  optimizer::OptimizeContext ctx;
  ctx.catalog = catalog_.get();
  ctx.sda = &sda_;
  ctx.options = opt_options_;
  ctx.options.use_remote_cache = false;
  for (const std::string& hint : stmt.hints) {
    if (hint == "USE_REMOTE_CACHE") ctx.options.use_remote_cache = true;
    if (hint == "NO_FEDERATION") ctx.options.enable_federation = false;
  }
  HANA_RETURN_IF_ERROR(optimizer::Optimize(&logical, ctx));
  return logical;
}

Result<ExecResult> Platform::ExecuteSelect(const sql::SelectStmt& stmt) {
  double virtual_before = VirtualNow();
  sda_.ResetStats();
  Stopwatch watch;
  HANA_ASSIGN_OR_RETURN(plan::LogicalOpPtr logical, PlanSelect(stmt));
  HANA_ASSIGN_OR_RETURN(
      storage::Table table,
      exec::ExecutePlanWithStats(*logical, this, &last_pipeline_stats_));
  ExecResult result;
  result.metrics.local_ms = watch.ElapsedMillis();
  result.metrics.simulated_remote_ms = VirtualNow() - virtual_before;
  result.metrics.total_ms =
      result.metrics.local_ms + result.metrics.simulated_remote_ms;
  result.metrics.rows = table.num_rows();
  federation::StatementRemoteStats remote_stats = sda_.stats();
  result.metrics.remote_calls = remote_stats.remote_calls;
  result.metrics.mapreduce_jobs = remote_stats.mapreduce_jobs;
  result.metrics.remote_cache_hit = remote_stats.any_cache_hit;
  result.metrics.remote_materialization = remote_stats.any_materialization;
  result.table = std::move(table);
  last_metrics_ = result.metrics;
  return result;
}

Result<ExecResult> Platform::ExecuteInsert(const sql::InsertStmt& stmt) {
  std::vector<std::vector<Value>> rows;
  if (stmt.select != nullptr) {
    HANA_ASSIGN_OR_RETURN(ExecResult selected, ExecuteSelect(*stmt.select));
    rows = std::move(selected.table.rows());
  } else {
    Schema empty;
    for (const auto& value_row : stmt.values_rows) {
      std::vector<Value> row;
      for (const auto& expr : value_row) {
        HANA_ASSIGN_OR_RETURN(plan::BoundExprPtr bound,
                              plan::BindScalarExpr(*expr, empty));
        HANA_ASSIGN_OR_RETURN(Value v, exec::EvalExprRow(*bound, {}));
        row.push_back(std::move(v));
      }
      rows.push_back(std::move(row));
    }
  }
  // Cast values to the column types (named or positional).
  HANA_ASSIGN_OR_RETURN(catalog::TableEntry * entry,
                        catalog_->GetTable(stmt.table));
  auto cast_row = [&](std::vector<Value>* row) -> Status {
    for (size_t c = 0; c < row->size(); ++c) {
      size_t target = c;
      if (!stmt.columns.empty()) {
        int idx = entry->schema->FindColumn(stmt.columns[c]);
        if (idx < 0 && !entry->flexible) {
          return Status::BindError("unknown column " + stmt.columns[c]);
        }
        if (idx < 0) continue;  // Flexible: typed later by InsertNamed.
        target = static_cast<size_t>(idx);
      }
      if (target < entry->schema->num_columns()) {
        HANA_ASSIGN_OR_RETURN(
            (*row)[c],
            (*row)[c].CastTo(entry->schema->column(target).type));
      }
    }
    return Status::OK();
  };
  for (auto& row : rows) HANA_RETURN_IF_ERROR(cast_row(&row));

  if (!stmt.columns.empty()) {
    HANA_RETURN_IF_ERROR(catalog_->InsertNamed(stmt.table, stmt.columns,
                                               rows));
  } else {
    HANA_RETURN_IF_ERROR(catalog_->Insert(stmt.table, rows));
  }

  // Auto-merge: once an insert leaves a column table (or a hot hybrid
  // partition) with at least merge_threshold_rows unmerged delta rows,
  // consolidate it online right away. Best-effort with respect to
  // overlapping merges: Unavailable just means another merge is already
  // folding the delta.
  if (merge_threshold_rows_ > 0) {
    storage::MergeOptions options;
    options.parallel = parallel_merge_;
    auto merge_if_due = [&](storage::ColumnTable* table) -> Status {
      if (table->delta_rows() < merge_threshold_rows_) return Status::OK();
      Status status = table->MergeDelta(options);
      if (status.code() == StatusCode::kUnavailable) return Status::OK();
      return status;
    };
    if (entry->kind == catalog::TableKind::kColumn) {
      HANA_RETURN_IF_ERROR(merge_if_due(entry->column_table.get()));
    } else if (entry->kind == catalog::TableKind::kHybrid) {
      for (auto& p : entry->partitions) {
        if (p.hot != nullptr) HANA_RETURN_IF_ERROR(merge_if_due(p.hot.get()));
      }
    }
  }

  ExecResult result;
  result.metrics.rows = rows.size();
  result.message = StrFormat("%zu rows inserted", rows.size());
  return result;
}

Result<ExecResult> Platform::ExecuteDelete(const sql::DeleteStmt& stmt) {
  HANA_ASSIGN_OR_RETURN(catalog::TableEntry * entry,
                        catalog_->GetTable(stmt.table));
  size_t deleted = 0;
  if (stmt.where == nullptr) {
    plan::BoundExprPtr always =
        plan::BoundExpr::Literal(Value::Bool(true), DataType::kBool);
    HANA_ASSIGN_OR_RETURN(deleted, catalog_->DeleteWhere(stmt.table, *always));
  } else {
    HANA_ASSIGN_OR_RETURN(plan::BoundExprPtr predicate,
                          plan::BindScalarExpr(*stmt.where, *entry->schema));
    HANA_ASSIGN_OR_RETURN(deleted,
                          catalog_->DeleteWhere(stmt.table, *predicate));
  }
  ExecResult result;
  result.metrics.rows = deleted;
  result.message = StrFormat("%zu rows deleted", deleted);
  return result;
}

Result<ExecResult> Platform::ExecuteUpdate(const sql::UpdateStmt& stmt) {
  HANA_ASSIGN_OR_RETURN(catalog::TableEntry * entry,
                        catalog_->GetTable(stmt.table));
  plan::BoundExprPtr predicate;
  if (stmt.where != nullptr) {
    HANA_ASSIGN_OR_RETURN(predicate,
                          plan::BindScalarExpr(*stmt.where, *entry->schema));
  }
  std::vector<plan::BoundExprPtr> owned;
  std::vector<std::pair<size_t, const plan::BoundExpr*>> assignments;
  for (const auto& [column, expr] : stmt.assignments) {
    HANA_ASSIGN_OR_RETURN(size_t idx, entry->schema->ColumnIndex(column));
    HANA_ASSIGN_OR_RETURN(plan::BoundExprPtr bound,
                          plan::BindScalarExpr(*expr, *entry->schema));
    owned.push_back(std::move(bound));
    assignments.emplace_back(idx, owned.back().get());
  }
  HANA_ASSIGN_OR_RETURN(
      size_t updated,
      catalog_->UpdateWhere(stmt.table, predicate.get(), assignments));
  ExecResult result;
  result.metrics.rows = updated;
  result.message = StrFormat("%zu rows updated", updated);
  return result;
}

Status Platform::HandleCreateRemoteSource(
    const sql::CreateRemoteSourceStmt& stmt) {
  catalog::RemoteSourceEntry entry;
  entry.name = stmt.name;
  entry.adapter = stmt.adapter;
  entry.configuration = stmt.configuration;
  entry.user = stmt.user;
  entry.password = stmt.password;
  HANA_RETURN_IF_ERROR(catalog_->AddRemoteSource(entry));

  std::string kind = ToLower(stmt.adapter);
  if (kind == "hiveodbc" || kind == "hadoop") {
    if (hive_ == nullptr) {
      return Status::Unavailable("no Hadoop substrate attached");
    }
    auto adapter = std::make_unique<federation::HiveAdapter>(
        hive_.get(), &clock_, options_.hive_link, stmt.configuration);
    hive_adapters_.push_back(adapter.get());
    return sda_.BindSource(stmt.name, std::move(adapter));
  }
  if (kind == "iq") {
    if (iq_ == nullptr) {
      return Status::Unavailable("no extended storage attached");
    }
    return sda_.BindSource(
        stmt.name,
        std::make_unique<federation::IqAdapter>(iq_.get(), &clock_));
  }
  return Status::InvalidArgument("unknown adapter: " + stmt.adapter);
}

Status Platform::HandleCreateVirtualTable(
    const sql::CreateVirtualTableStmt& stmt) {
  HANA_ASSIGN_OR_RETURN(federation::Adapter * adapter,
                        sda_.AdapterFor(stmt.source));
  const std::string& remote_object = stmt.remote_path.back();
  HANA_ASSIGN_OR_RETURN(std::shared_ptr<Schema> schema,
                        adapter->FetchTableSchema(remote_object));
  catalog::VirtualTableEntry entry;
  entry.name = stmt.name;
  entry.source = stmt.source;
  entry.remote_object = remote_object;
  entry.schema = std::move(schema);
  Result<double> rows = adapter->EstimateRows(remote_object);
  entry.estimated_rows = rows.ok() ? *rows : -1;
  return catalog_->AddVirtualTable(std::move(entry));
}

Result<ExecResult> Platform::Execute(const std::string& sql) {
  HANA_ASSIGN_OR_RETURN(sql::StmtPtr stmt, sql::ParseStatement(sql));
  switch (stmt->kind()) {
    case sql::StmtKind::kSelect:
      return ExecuteSelect(static_cast<const sql::SelectStmt&>(*stmt));
    case sql::StmtKind::kExplain: {
      const auto& explain = static_cast<const sql::ExplainStmt&>(*stmt);
      HANA_ASSIGN_OR_RETURN(plan::LogicalOpPtr logical,
                            PlanSelect(*explain.select));
      std::vector<plan::PipelineSummary> pipelines =
          exec::AnnotatePipelines(logical.get(), this);
      ExecResult result;
      result.message = logical->ToString();
      result.message += optimizer::FormatPipelines(pipelines);
      return result;
    }
    case sql::StmtKind::kInsert:
      return ExecuteInsert(static_cast<const sql::InsertStmt&>(*stmt));
    case sql::StmtKind::kDelete:
      return ExecuteDelete(static_cast<const sql::DeleteStmt&>(*stmt));
    case sql::StmtKind::kUpdate:
      return ExecuteUpdate(static_cast<const sql::UpdateStmt&>(*stmt));
    case sql::StmtKind::kCreateTable: {
      HANA_RETURN_IF_ERROR(catalog_->CreateTable(
          static_cast<const sql::CreateTableStmt&>(*stmt)));
      ExecResult result;
      result.message = "table created";
      return result;
    }
    case sql::StmtKind::kDropTable: {
      const auto& drop = static_cast<const sql::DropTableStmt&>(*stmt);
      HANA_RETURN_IF_ERROR(catalog_->DropTable(drop.table, drop.if_exists));
      ExecResult result;
      result.message = "table dropped";
      return result;
    }
    case sql::StmtKind::kCreateRemoteSource: {
      HANA_RETURN_IF_ERROR(HandleCreateRemoteSource(
          static_cast<const sql::CreateRemoteSourceStmt&>(*stmt)));
      ExecResult result;
      result.message = "remote source created";
      return result;
    }
    case sql::StmtKind::kCreateVirtualTable: {
      HANA_RETURN_IF_ERROR(HandleCreateVirtualTable(
          static_cast<const sql::CreateVirtualTableStmt&>(*stmt)));
      ExecResult result;
      result.message = "virtual table created";
      return result;
    }
    case sql::StmtKind::kCreateVirtualFunction: {
      const auto& fn = static_cast<const sql::CreateVirtualFunctionStmt&>(*stmt);
      catalog::VirtualFunctionEntry entry;
      entry.name = fn.name;
      entry.source = fn.source;
      entry.configuration = fn.configuration;
      entry.schema = std::make_shared<Schema>(fn.returns);
      HANA_RETURN_IF_ERROR(catalog_->AddVirtualFunction(std::move(entry)));
      ExecResult result;
      result.message = "virtual function created";
      return result;
    }
    case sql::StmtKind::kMergeDelta: {
      const auto& merge = static_cast<const sql::MergeDeltaStmt&>(*stmt);
      storage::MergeOptions options;
      options.parallel = parallel_merge_;
      HANA_RETURN_IF_ERROR(catalog_->MergeDelta(merge.table, options));
      ExecResult result;
      result.message = "delta merged";
      return result;
    }
  }
  return Status::Internal("unhandled statement kind");
}

Result<storage::Table> Platform::Query(const std::string& sql) {
  HANA_ASSIGN_OR_RETURN(ExecResult result, Execute(sql));
  return std::move(result.table);
}

Status Platform::Run(const std::string& script) {
  for (const std::string& stmt : sql::SplitStatements(script)) {
    HANA_RETURN_IF_ERROR(Execute(stmt).status());
  }
  return Status::OK();
}

Result<std::string> Platform::Explain(const std::string& sql) {
  HANA_ASSIGN_OR_RETURN(ExecResult result, Execute("EXPLAIN " + sql));
  return result.message;
}

Status Platform::SetParameter(const std::string& name,
                              const std::string& value) {
  std::string key = ToLower(name);
  if (key == "enable_remote_cache") {
    bool enable = EqualsIgnoreCase(value, "true") || value == "1";
    for (auto* adapter : hive_adapters_) {
      adapter->cache_options().enable_remote_cache = enable;
    }
    return Status::OK();
  }
  if (key == "remote_cache_validity") {
    char* end = nullptr;
    double seconds = std::strtod(value.c_str(), &end);
    if (end == value.c_str()) {
      return Status::InvalidArgument("invalid validity: " + value);
    }
    for (auto* adapter : hive_adapters_) {
      adapter->cache_options().remote_cache_validity_seconds = seconds;
    }
    return Status::OK();
  }
  if (key == "parallel_join" || key == "parallel_agg" ||
      key == "parallel_merge") {
    std::string v;
    for (char c : value) v += static_cast<char>(std::tolower(c));
    bool enabled;
    if (v == "on" || v == "true" || v == "1") {
      enabled = true;
    } else if (v == "off" || v == "false" || v == "0") {
      enabled = false;
    } else {
      return Status::InvalidArgument("invalid " + key + ": " + value);
    }
    (key == "parallel_join"  ? parallel_join_
     : key == "parallel_agg" ? parallel_agg_
                             : parallel_merge_) = enabled;
    return Status::OK();
  }
  if (key == "merge_threshold_rows") {
    char* end = nullptr;
    long parsed = std::strtol(value.c_str(), &end, 10);
    if (end == value.c_str() || parsed < 0) {
      return Status::InvalidArgument("invalid merge_threshold_rows: " + value);
    }
    merge_threshold_rows_ = static_cast<size_t>(parsed);
    return Status::OK();
  }
  if (key == "threads" || key == "morsel_rows" || key == "agg_partitions") {
    char* end = nullptr;
    long parsed = std::strtol(value.c_str(), &end, 10);
    if (end == value.c_str() || parsed < 0) {
      return Status::InvalidArgument("invalid " + key + ": " + value);
    }
    size_t v = static_cast<size_t>(parsed);
    if (key == "threads") {
      dop_ = v > 0 ? v : TaskPool::DefaultDop();
    } else if (key == "morsel_rows") {
      morsel_rows_ = v > 0 ? v : exec::kDefaultMorselRows;
    } else {
      agg_partitions_ = v;  // 0 restores the cardinality-based default.
    }
    return Status::OK();
  }
  if (key == "cpu") {
    std::string v;
    for (char c : value) v += static_cast<char>(std::tolower(c));
    return SetCpuMode(v);
  }
  if (key == "executor") {
    if (value == "pipeline") {
      executor_mode_ = exec::ExecutorMode::kPipeline;
    } else if (value == "fused") {
      executor_mode_ = exec::ExecutorMode::kFused;
    } else if (value == "serial") {
      executor_mode_ = exec::ExecutorMode::kSerial;
    } else {
      return Status::InvalidArgument("invalid executor: " + value);
    }
    return Status::OK();
  }
  return Status::NotFound("unknown parameter: " + name);
}

Status Platform::RegisterMapReduceJob(
    const std::string& driver_class,
    std::function<Result<storage::Table>(hadoop::HiveEngine*)> runner) {
  if (hive_adapters_.empty()) {
    return Status::Unavailable(
        "register a hadoop remote source before map-reduce jobs");
  }
  for (auto* adapter : hive_adapters_) {
    adapter->RegisterMapReduceJob(driver_class, runner);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------
// ExecContext
// ---------------------------------------------------------------------

exec::ExecContext::ReadLease Platform::AcquireReadLease() {
  ReadLease lease;
  lease.hold = mvcc::VersionManager::Global().AcquireSnapshot();
  lease.view.read_ts = lease.hold.read_ts();
  {
    // New statement: drop the previous statement's snapshot reuse map.
    // Entries are keyed by the full view, so a concurrent statement that
    // loses its cache here merely re-pins — it can never read a wrong
    // snapshot.
    MutexLock lock(snapshot_cache_mu_);
    snapshot_cache_.clear();
  }
  return lease;
}

std::shared_ptr<const storage::TableReadSnapshot> Platform::SnapshotFor(
    const storage::ColumnTable* table, const mvcc::ReadView& view) {
  // Latest-view reads (read_ts == kLatest outside any lease) resolve
  // their timestamp at open time, so two opens may legitimately see
  // different data — never cache those.
  if (view.read_ts == mvcc::kLatest) return table->OpenSnapshot(view);
  SnapshotKey key{table, view.read_ts, view.txn};
  {
    MutexLock lock(snapshot_cache_mu_);
    auto it = snapshot_cache_.find(key);
    if (it != snapshot_cache_.end()) return it->second;
  }
  // Open outside the cache lock: OpenSnapshot takes mvcc.version and
  // storage.state, which must not nest inside platform.snapshot_cache.
  std::shared_ptr<const storage::TableReadSnapshot> snap =
      table->OpenSnapshot(view);
  MutexLock lock(snapshot_cache_mu_);
  auto [it, inserted] = snapshot_cache_.emplace(key, snap);
  return it->second;  // First opener wins on a race.
}

Result<exec::ChunkStream> Platform::OpenScan(const plan::LogicalOp& scan) {
  return OpenScanAt(scan, mvcc::ReadView{});
}

Result<exec::ChunkStream> Platform::OpenScanAt(const plan::LogicalOp& scan,
                                               const mvcc::ReadView& view) {
  const plan::TableBinding& binding = scan.table;
  switch (binding.location) {
    case plan::TableLocation::kLocalColumn:
    case plan::TableLocation::kLocalRow:
    case plan::TableLocation::kHybrid: {
      // Hybrid scans arrive either expanded (partition_index >= 0, hot
      // partitions only) or unexpanded (scan everything).
      std::string base = binding.name;
      auto pos = base.find("__P");
      if (pos != std::string::npos) base = base.substr(0, pos);
      HANA_ASSIGN_OR_RETURN(catalog::TableEntry * entry,
                            catalog_->GetTable(base));
      auto chunks = std::make_shared<std::deque<storage::Chunk>>();
      auto sink = [&](const storage::Chunk& chunk) {
        storage::Chunk copy = chunk;
        copy.schema = scan.schema;
        chunks->push_back(std::move(copy));
        return true;
      };
      if (entry->kind == catalog::TableKind::kColumn) {
        SnapshotFor(entry->column_table.get(), view)
            ->Scan(storage::kDefaultChunkRows, sink);
      } else if (entry->kind == catalog::TableKind::kRow) {
        entry->row_table->Scan(storage::kDefaultChunkRows, sink);
      } else if (entry->kind == catalog::TableKind::kHybrid) {
        for (size_t i = 0; i < entry->partitions.size(); ++i) {
          if (scan.partition_index >= 0 &&
              static_cast<size_t>(scan.partition_index) != i) {
            continue;
          }
          catalog::Partition& partition = entry->partitions[i];
          if (partition.hot != nullptr) {
            SnapshotFor(partition.hot.get(), view)
                ->Scan(storage::kDefaultChunkRows, sink);
          } else if (scan.partition_index < 0) {
            // Unexpanded hybrid scan: read cold partitions directly.
            // The extended engine mutates its buffer cache and clock on
            // reads, so direct access shares the SDA dispatch mutex
            // with concurrently opened federation branches.
            federation::SdaRuntime::TrackedDispatch guard(&sda_);
            HANA_ASSIGN_OR_RETURN(
                extended::ExtendedTable * cold,
                iq_->store()->GetTable(partition.cold_table));
            HANA_RETURN_IF_ERROR(
                cold->Scan({}, storage::kDefaultChunkRows, sink));
          }
        }
      } else {
        return Status::Internal("unexpected storage for scan of " + base);
      }
      return StreamChunks(chunks);
    }
    case plan::TableLocation::kExtended: {
      if (iq_ == nullptr) {
        return Status::Unavailable("extended storage not attached");
      }
      // Direct engine access; see the hybrid cold-partition case above.
      federation::SdaRuntime::TrackedDispatch guard(&sda_);
      HANA_ASSIGN_OR_RETURN(extended::ExtendedTable * table,
                            iq_->store()->GetTable(binding.name));
      std::vector<extended::ColumnRange> ranges;
      for (const auto& r : scan.scan_ranges) {
        ranges.push_back(extended::ColumnRange{r.column, r.lower, r.upper});
      }
      auto chunks = std::make_shared<std::deque<storage::Chunk>>();
      HANA_RETURN_IF_ERROR(table->Scan(
          ranges, storage::kDefaultChunkRows,
          [&](const storage::Chunk& chunk) {
            storage::Chunk copy = chunk;
            copy.schema = scan.schema;
            chunks->push_back(std::move(copy));
            return true;
          }));
      return StreamChunks(chunks);
    }
    case plan::TableLocation::kRemote: {
      // Federation disabled (or not split): fetch the full virtual table.
      plan::LogicalOp rq;
      rq.kind = plan::LogicalKind::kRemoteQuery;
      rq.schema = scan.schema;
      rq.remote_source = binding.source;
      std::vector<std::string> cols;
      for (size_t i = 0; i < binding.schema->num_columns(); ++i) {
        cols.push_back("t0." + binding.schema->column(i).name + " AS c" +
                       std::to_string(i));
      }
      rq.remote_sql = "SELECT " + Join(cols, ", ") + " FROM " +
                      binding.remote_object + " t0";
      HANA_ASSIGN_OR_RETURN(storage::Table table,
                            sda_.ExecuteRemoteQuery(rq, nullptr, nullptr));
      return StreamTable(std::make_shared<storage::Table>(std::move(table)),
                         scan.schema);
    }
  }
  return Status::Internal("unknown table location");
}

exec::ParallelPolicy Platform::parallel_policy() {
  exec::ParallelPolicy policy;
  policy.pool = &TaskPool::Global();
  policy.dop = dop_;
  policy.morsel_rows = morsel_rows_;
  policy.parallel_join = parallel_join_;
  policy.parallel_agg = parallel_agg_;
  policy.agg_partitions = agg_partitions_;
  policy.executor = executor_mode_;
  return policy;
}

Result<std::optional<exec::PartitionSource>> Platform::OpenPartitionedScan(
    const plan::LogicalOp& scan, size_t morsel_rows) {
  return OpenPartitionedScanAt(scan, morsel_rows, mvcc::ReadView{});
}

Result<std::optional<exec::PartitionSource>> Platform::OpenPartitionedScanAt(
    const plan::LogicalOp& scan, size_t morsel_rows,
    const mvcc::ReadView& view) {
  const plan::TableBinding& binding = scan.table;
  // Only plain local tables decompose into morsels; hybrid umbrella
  // scans, expanded hot partitions and remote/extended sources keep the
  // streaming path.
  if ((binding.location != plan::TableLocation::kLocalColumn &&
       binding.location != plan::TableLocation::kLocalRow) ||
      scan.partition_index >= 0) {
    return std::optional<exec::PartitionSource>();
  }
  Result<catalog::TableEntry*> entry = catalog_->GetTable(binding.name);
  if (!entry.ok()) return std::optional<exec::PartitionSource>();
  if (morsel_rows == 0) morsel_rows = morsel_rows_;

  exec::PartitionSource source;
  std::shared_ptr<Schema> schema = scan.schema;
  auto restamp = [schema](
      const std::function<bool(const storage::Chunk&)>& sink,
      const storage::Chunk& chunk) {
    storage::Chunk copy = chunk;
    copy.schema = schema;
    return sink(copy);
  };
  if ((*entry)->kind == catalog::TableKind::kColumn) {
    // One storage snapshot shared by every morsel: the decomposition's
    // num_rows and each morsel's bounds come from the same frozen view,
    // so concurrent commits (or delta merges) between morsel planning
    // and morsel scans cannot skew the partitioning — and all morsels
    // apply the same MVCC visibility filter.
    std::shared_ptr<const storage::TableReadSnapshot> snap =
        SnapshotFor((*entry)->column_table.get(), view);
    size_t rows = snap->num_rows();
    source.num_morsels = (rows + morsel_rows - 1) / morsel_rows;
    source.scan_morsel =
        [snap, morsel_rows, restamp](
            size_t m,
            const std::function<bool(const storage::Chunk&)>& sink) {
          size_t begin = m * morsel_rows;
          snap->ScanRange(begin,
                          std::min(snap->num_rows(), begin + morsel_rows),
                          morsel_rows, [&](const storage::Chunk& chunk) {
                            return restamp(sink, chunk);
                          });
          return Status::OK();
        };
    return std::optional<exec::PartitionSource>(std::move(source));
  }
  if ((*entry)->kind == catalog::TableKind::kRow) {
    storage::RowTable* table = (*entry)->row_table.get();
    size_t rows = table->num_rows();
    source.num_morsels = (rows + morsel_rows - 1) / morsel_rows;
    source.scan_morsel =
        [table, morsel_rows, restamp](
            size_t m,
            const std::function<bool(const storage::Chunk&)>& sink) {
          size_t begin = m * morsel_rows;
          table->ScanRange(begin,
                           std::min(table->num_rows(), begin + morsel_rows),
                           morsel_rows, [&](const storage::Chunk& chunk) {
                             return restamp(sink, chunk);
                           });
          return Status::OK();
        };
    return std::optional<exec::PartitionSource>(std::move(source));
  }
  return std::optional<exec::PartitionSource>();
}

void Platform::BeginConcurrentRemoteDispatch() {
  sda_.BeginConcurrentRegion();
}

void Platform::EndConcurrentRemoteDispatch() { sda_.EndConcurrentRegion(); }

Result<exec::ChunkStream> Platform::OpenRemoteQuery(
    const plan::LogicalOp& rq, const exec::PushdownInList* in_list,
    const storage::Table* relocated_rows) {
  HANA_ASSIGN_OR_RETURN(storage::Table table,
                        sda_.ExecuteRemoteQuery(rq, in_list, relocated_rows));
  return StreamTable(std::make_shared<storage::Table>(std::move(table)),
                     rq.schema);
}

Result<exec::ChunkStream> Platform::OpenTableFunction(
    const plan::LogicalOp& fn) {
  HANA_ASSIGN_OR_RETURN(
      storage::Table table,
      sda_.ExecuteVirtualFunction(fn.function.source,
                                  fn.function.configuration));
  if (table.schema()->num_columns() != fn.schema->num_columns()) {
    return Status::Internal(
        "virtual function result arity does not match declaration");
  }
  return StreamTable(std::make_shared<storage::Table>(std::move(table)),
                     fn.schema);
}

}  // namespace hana::platform
