#ifndef HANA_COMMON_RESULT_H_
#define HANA_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace hana {

/// Holds either a value of type T or an error Status. The lightweight
/// analogue of absl::StatusOr used throughout the platform. Like
/// Status, the class is [[nodiscard]]: a dropped Result silently
/// swallows both the value and the error, so the compiler rejects it.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value makes `return value;` work in
  /// Result-returning functions.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error Status makes
  /// `return Status::NotFound(...)` work.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires an error status");
  }

  Result(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(const Result&) = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Extracts the value without checking; used by HANA_ASSIGN_OR_RETURN
  /// after the error branch has already returned.
  T&& ValueUnsafe() && { return std::move(*value_); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace hana

#endif  // HANA_COMMON_RESULT_H_
