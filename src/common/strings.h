#ifndef HANA_COMMON_STRINGS_H_
#define HANA_COMMON_STRINGS_H_

#include <cstdarg>
#include <string>
#include <vector>

namespace hana {

/// ASCII-only case conversion (SQL identifiers/keywords).
std::string ToUpper(const std::string& s);
std::string ToLower(const std::string& s);

/// Strips leading/trailing whitespace.
std::string Trim(const std::string& s);

/// Splits on a single character; keeps empty fields.
std::vector<std::string> Split(const std::string& s, char sep);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(const std::string& a, const std::string& b);

/// SQL LIKE matching with '%' and '_' wildcards.
bool LikeMatch(const std::string& text, const std::string& pattern);

}  // namespace hana

#endif  // HANA_COMMON_STRINGS_H_
