#include "common/util.h"

#include <cstdio>

namespace hana {

uint64_t Fnv1a64(const void* data, size_t size) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

uint64_t Fnv1a64(const std::string& s) { return Fnv1a64(s.data(), s.size()); }

namespace {
LogLevel g_log_level = LogLevel::kWarn;
}  // namespace

void SetLogLevel(LogLevel level) { g_log_level = level; }
LogLevel GetLogLevel() { return g_log_level; }

void LogMessage(LogLevel level, const std::string& msg) {
  const char* name = "?";
  switch (level) {
    case LogLevel::kDebug:
      name = "DEBUG";
      break;
    case LogLevel::kInfo:
      name = "INFO";
      break;
    case LogLevel::kWarn:
      name = "WARN";
      break;
    case LogLevel::kError:
      name = "ERROR";
      break;
  }
  std::fprintf(stderr, "[%s] %s\n", name, msg.c_str());
}

}  // namespace hana
