#include "common/schema.h"

#include "common/strings.h"

namespace hana {

namespace {

// Returns the unqualified part of "t.c" ("c"), or the input itself.
std::string BaseName(const std::string& name) {
  auto pos = name.rfind('.');
  return pos == std::string::npos ? name : name.substr(pos + 1);
}

}  // namespace

int Schema::FindColumn(const std::string& name) const {
  // Exact (case-insensitive) match first.
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) return static_cast<int>(i);
  }
  // Qualified lookup "t.c" against a column registered as "c".
  std::string base = BaseName(name);
  if (base != name) {
    for (size_t i = 0; i < columns_.size(); ++i) {
      if (EqualsIgnoreCase(columns_[i].name, base)) return static_cast<int>(i);
    }
  }
  // Unqualified lookup "c" against a column registered as "t.c"; must be
  // unambiguous.
  int found = -1;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(BaseName(columns_[i].name), name)) {
      if (found >= 0) return -1;  // Ambiguous.
      found = static_cast<int>(i);
    }
  }
  return found;
}

Result<size_t> Schema::ColumnIndex(const std::string& name) const {
  int idx = FindColumn(name);
  if (idx < 0) {
    return Status::NotFound("column not found or ambiguous: " + name);
  }
  return static_cast<size_t>(idx);
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += " ";
    out += DataTypeName(columns_[i].type);
    if (!columns_[i].nullable) out += " NOT NULL";
  }
  out += ")";
  return out;
}

}  // namespace hana
