#include "common/value.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <functional>

#include "common/strings.h"

namespace hana {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kNull:
      return "NULL";
    case DataType::kBool:
      return "BOOLEAN";
    case DataType::kInt64:
      return "BIGINT";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "VARCHAR";
    case DataType::kDate:
      return "DATE";
    case DataType::kTimestamp:
      return "TIMESTAMP";
  }
  return "UNKNOWN";
}

Result<DataType> DataTypeFromName(const std::string& name) {
  std::string upper = ToUpper(name);
  // Strip a length suffix: VARCHAR(30) -> VARCHAR.
  auto paren = upper.find('(');
  if (paren != std::string::npos) upper = upper.substr(0, paren);
  upper = Trim(upper);
  if (upper == "BOOLEAN" || upper == "BOOL") return DataType::kBool;
  if (upper == "BIGINT" || upper == "INT" || upper == "INTEGER" ||
      upper == "SMALLINT" || upper == "TINYINT") {
    return DataType::kInt64;
  }
  if (upper == "DOUBLE" || upper == "FLOAT" || upper == "REAL" ||
      upper == "DECIMAL" || upper == "NUMERIC") {
    return DataType::kDouble;
  }
  if (upper == "VARCHAR" || upper == "CHAR" || upper == "TEXT" ||
      upper == "STRING" || upper == "NVARCHAR") {
    return DataType::kString;
  }
  if (upper == "DATE") return DataType::kDate;
  if (upper == "TIMESTAMP") return DataType::kTimestamp;
  return Status::ParseError("unknown data type: " + name);
}

bool IsNumericType(DataType type) {
  return type == DataType::kInt64 || type == DataType::kDouble ||
         type == DataType::kDate || type == DataType::kTimestamp;
}

double Value::AsDouble() const {
  switch (type_) {
    case DataType::kBool:
      return bool_value() ? 1.0 : 0.0;
    case DataType::kInt64:
    case DataType::kDate:
    case DataType::kTimestamp:
      return static_cast<double>(int_value());
    case DataType::kDouble:
      return double_value();
    default:
      return 0.0;
  }
}

int64_t Value::AsInt() const {
  switch (type_) {
    case DataType::kBool:
      return bool_value() ? 1 : 0;
    case DataType::kInt64:
    case DataType::kDate:
    case DataType::kTimestamp:
      return int_value();
    case DataType::kDouble:
      return static_cast<int64_t>(double_value());
    default:
      return 0;
  }
}

int Value::Compare(const Value& other) const {
  if (is_null() || other.is_null()) {
    if (is_null() && other.is_null()) return 0;
    return is_null() ? -1 : 1;
  }
  if (IsNumericType(type_) && IsNumericType(other.type_)) {
    if (type_ == DataType::kInt64 && other.type_ == DataType::kInt64) {
      int64_t a = int_value(), b = other.int_value();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    double a = AsDouble(), b = other.AsDouble();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (type_ != other.type_) {
    return static_cast<int>(type_) < static_cast<int>(other.type_) ? -1 : 1;
  }
  switch (type_) {
    case DataType::kBool: {
      int a = bool_value(), b = other.bool_value();
      return a - b;
    }
    case DataType::kString:
      return string_value().compare(other.string_value());
    default:
      return 0;
  }
}

size_t Value::Hash() const {
  switch (type_) {
    case DataType::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case DataType::kBool:
      return std::hash<int64_t>()(bool_value() ? 1 : 0);
    case DataType::kInt64:
    case DataType::kDate:
    case DataType::kTimestamp: {
      // Hash via the double image so 1 and 1.0 collide (they compare equal).
      double d = static_cast<double>(int_value());
      if (d == std::floor(d) &&
          d >= -9.0e15 && d <= 9.0e15) {
        return std::hash<int64_t>()(int_value());
      }
      return std::hash<double>()(d);
    }
    case DataType::kDouble: {
      double d = double_value();
      if (d == std::floor(d) && d >= -9.0e15 && d <= 9.0e15) {
        return std::hash<int64_t>()(static_cast<int64_t>(d));
      }
      return std::hash<double>()(d);
    }
    case DataType::kString:
      return std::hash<std::string>()(string_value());
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type_) {
    case DataType::kNull:
      return "NULL";
    case DataType::kBool:
      return bool_value() ? "TRUE" : "FALSE";
    case DataType::kInt64:
      return std::to_string(int_value());
    case DataType::kDouble: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.6g", double_value());
      return buf;
    }
    case DataType::kString:
      return string_value();
    case DataType::kDate:
      return FormatDate(int_value());
    case DataType::kTimestamp: {
      int64_t micros = int_value();
      int64_t days = micros / (86400LL * 1000000LL);
      int64_t rem = micros - days * 86400LL * 1000000LL;
      if (rem < 0) {
        rem += 86400LL * 1000000LL;
        --days;
      }
      int64_t secs = rem / 1000000;
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%s %02" PRId64 ":%02" PRId64 ":%02" PRId64,
                    FormatDate(days).c_str(), secs / 3600, (secs / 60) % 60,
                    secs % 60);
      return buf;
    }
  }
  return "?";
}

Result<Value> Value::CastTo(DataType target) const {
  if (is_null()) return Value::Null();
  if (type_ == target) return *this;
  switch (target) {
    case DataType::kBool:
      if (IsNumericType(type_)) return Value::Bool(AsDouble() != 0.0);
      break;
    case DataType::kInt64:
      if (IsNumericType(type_) || type_ == DataType::kBool) {
        return Value::Int(AsInt());
      }
      if (type_ == DataType::kString) {
        errno = 0;
        char* end = nullptr;
        long long v = std::strtoll(string_value().c_str(), &end, 10);
        if (end == string_value().c_str() || *end != '\0') {
          return Status::InvalidArgument("cannot cast '" + string_value() +
                                         "' to BIGINT");
        }
        return Value::Int(v);
      }
      break;
    case DataType::kDouble:
      if (IsNumericType(type_) || type_ == DataType::kBool) {
        return Value::Double(AsDouble());
      }
      if (type_ == DataType::kString) {
        char* end = nullptr;
        double v = std::strtod(string_value().c_str(), &end);
        if (end == string_value().c_str() || *end != '\0') {
          return Status::InvalidArgument("cannot cast '" + string_value() +
                                         "' to DOUBLE");
        }
        return Value::Double(v);
      }
      break;
    case DataType::kString:
      return Value::String(ToString());
    case DataType::kDate:
      if (type_ == DataType::kString) {
        HANA_ASSIGN_OR_RETURN(int64_t days, ParseDate(string_value()));
        return Value::Date(days);
      }
      if (type_ == DataType::kInt64) return Value::Date(int_value());
      if (type_ == DataType::kTimestamp) {
        return Value::Date(int_value() / (86400LL * 1000000LL));
      }
      break;
    case DataType::kTimestamp:
      if (type_ == DataType::kInt64) return Value::Timestamp(int_value());
      if (type_ == DataType::kDate) {
        return Value::Timestamp(int_value() * 86400LL * 1000000LL);
      }
      break;
    default:
      break;
  }
  return Status::InvalidArgument(std::string("unsupported cast from ") +
                                 DataTypeName(type_) + " to " +
                                 DataTypeName(target));
}

int64_t DaysFromCivil(int year, int month, int day) {
  // Howard Hinnant's civil-days algorithm.
  year -= month <= 2;
  const int era = (year >= 0 ? year : year - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(year - era * 400);
  const unsigned doy =
      (153 * (static_cast<unsigned>(month) + (month > 2 ? -3 : 9)) + 2) / 5 +
      static_cast<unsigned>(day) - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return static_cast<int64_t>(era) * 146097 + static_cast<int64_t>(doe) -
         719468;
}

Result<int64_t> ParseDate(const std::string& text) {
  int year = 0, month = 0, day = 0;
  if (std::sscanf(text.c_str(), "%d-%d-%d", &year, &month, &day) != 3 ||
      month < 1 || month > 12 || day < 1 || day > 31) {
    return Status::ParseError("invalid date literal: " + text);
  }
  return DaysFromCivil(year, month, day);
}

std::string FormatDate(int64_t days) {
  // Inverse of DaysFromCivil.
  int64_t z = days + 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3 : -9);
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%04" PRId64 "-%02u-%02u", y + (m <= 2), m, d);
  return buf;
}

}  // namespace hana
