#include "common/mvcc.h"

#include <algorithm>

namespace hana::mvcc {

void SnapshotHandle::Release() {
  if (vm_ == nullptr) return;
  vm_->ReleaseSnapshot(ts_);
  vm_ = nullptr;
}

Timestamp VersionManager::AllocateCommit() {
  MutexLock lock(mu_);
  Timestamp ts = next_++;
  inflight_.insert(ts);
  return ts;
}

void VersionManager::FinishCommit(Timestamp ts) {
  MutexLock lock(mu_);
  inflight_.erase(ts);
  last_visible_ = inflight_.empty() ? next_ - 1 : *inflight_.begin() - 1;
}

Timestamp VersionManager::LastVisible() const {
  MutexLock lock(mu_);
  return last_visible_;
}

Timestamp VersionManager::StampNonTransactional() {
  MutexLock lock(mu_);
  Timestamp ts = next_++;
  if (inflight_.empty()) last_visible_ = next_ - 1;
  return ts;
}

SnapshotHandle VersionManager::AcquireSnapshot() {
  MutexLock lock(mu_);
  snapshots_.insert(last_visible_);
  return SnapshotHandle(this, last_visible_);
}

Timestamp VersionManager::Watermark() const {
  MutexLock lock(mu_);
  if (snapshots_.empty()) return last_visible_;
  return std::min(*snapshots_.begin(), last_visible_);
}

size_t VersionManager::ActiveSnapshots() const {
  MutexLock lock(mu_);
  return snapshots_.size();
}

void VersionManager::ReleaseSnapshot(Timestamp ts) {
  MutexLock lock(mu_);
  auto it = snapshots_.find(ts);
  if (it != snapshots_.end()) snapshots_.erase(it);
}

VersionManager& VersionManager::Global() {
  static VersionManager* instance = new VersionManager();
  return *instance;
}

}  // namespace hana::mvcc
