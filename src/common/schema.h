#ifndef HANA_COMMON_SCHEMA_H_
#define HANA_COMMON_SCHEMA_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"

namespace hana {

/// One column of a relation: a name, a type and nullability.
struct ColumnDef {
  std::string name;
  DataType type = DataType::kNull;
  bool nullable = true;

  bool operator==(const ColumnDef& other) const {
    return name == other.name && type == other.type &&
           nullable == other.nullable;
  }
};

/// An ordered list of columns. Lookup is by case-insensitive name and
/// optionally by a "table.column" qualified form.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns)
      : columns_(std::move(columns)) {}

  size_t num_columns() const { return columns_.size(); }
  const ColumnDef& column(size_t i) const { return columns_[i]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  void AddColumn(ColumnDef column) { columns_.push_back(std::move(column)); }

  /// Index of the column with the given (case-insensitive) name, or -1.
  /// A qualified name "t.c" matches a column named "t.c" or "c".
  int FindColumn(const std::string& name) const;

  [[nodiscard]] Result<size_t> ColumnIndex(const std::string& name) const;

  bool operator==(const Schema& other) const {
    return columns_ == other.columns_;
  }

  std::string ToString() const;

 private:
  std::vector<ColumnDef> columns_;
};

}  // namespace hana

#endif  // HANA_COMMON_SCHEMA_H_
