// Runtime lock-order validator backing common/sync.h. Compiled to an
// empty TU unless the build defines HANA_LOCK_ORDER_CHECKS (on by
// default outside Release builds; see the top-level CMakeLists).
//
// Design: each thread keeps a TLS stack of Entry records, one per held
// hana::Mutex, each with a raw backtrace captured at acquisition.
// BeforeLock() runs the two checks — re-acquire (self-deadlock) against
// the whole stack, rank ordering against the segment above the most
// recent task-pool fence — and routes violations per HANA_LOCK_ORDER
// (off | report | fatal), read at violation time so death tests can set
// it in the child process. Symbolization (backtrace_symbols) is
// deferred to violation time; the per-acquisition cost is one
// backtrace() call.
//
// The validator's own state deliberately uses std::mutex, not
// hana::Mutex: instrumenting the instrument would recurse.
// scripts/lint.sh exempts common/sync.{h,cc} from the naked-std-locking
// rule for exactly this file.
#include "common/sync.h"

#ifdef HANA_LOCK_ORDER_CHECKS

#include <execinfo.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

namespace hana::lock_order {
namespace {

constexpr int kMaxFrames = 24;
// Print the first few full diagnostics in report mode, then only count:
// a hot mis-ordered path would otherwise flood stderr.
constexpr uint64_t kMaxPrinted = 16;

struct Entry {
  const Mutex* mu;       // nullptr = task-pool fence sentinel.
  void* frames[kMaxFrames];
  int depth;
};

thread_local std::vector<Entry> tls_held;

// atomic: relaxed monotonic counter; readers only need an eventually
// consistent total, never ordering against the held-lock state.
std::atomic<uint64_t> violation_count{0};

std::mutex diag_mu;  // Serializes stderr output + last_message.
std::string last_message;  // guarded by diag_mu

enum class Mode { kOff, kReport, kFatal };

Mode CurrentMode() {
  const char* env = std::getenv("HANA_LOCK_ORDER");
  if (env == nullptr) return Mode::kReport;
  if (std::strcmp(env, "off") == 0) return Mode::kOff;
  if (std::strcmp(env, "fatal") == 0) return Mode::kFatal;
  return Mode::kReport;
}

void AppendFrames(std::string* out, void* const* frames, int depth) {
  char** symbols = backtrace_symbols(frames, depth);
  for (int i = 0; i < depth; ++i) {
    out->append("      ");
    if (symbols != nullptr && symbols[i] != nullptr) {
      out->append(symbols[i]);
    } else {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%p", frames[i]);
      out->append(buf);
    }
    out->push_back('\n');
  }
  std::free(symbols);  // backtrace_symbols mallocs one block.
}

std::string Describe(const Mutex* mu) {
  char buf[160];
  if (mu->rank() >= 0) {
    std::snprintf(buf, sizeof(buf), "\"%s\" (rank %d)", mu->name(),
                  mu->rank());
  } else {
    std::snprintf(buf, sizeof(buf), "\"%s\" (unranked, %p)", mu->name(),
                  static_cast<const void*>(mu));
  }
  return buf;
}

// Builds the full diagnostic and dispatches it per `mode`. `held` is
// the conflicting stack entry (the re-acquired mutex, or the held lock
// whose rank blocks the acquisition); may be nullptr when the conflict
// has no recorded entry.
void Report(Mode mode, bool always_fatal, const std::string& headline,
            const Entry* held) {
  std::string msg = headline;
  msg.push_back('\n');
  if (held != nullptr) {
    msg.append("  held lock acquired at:\n");
    AppendFrames(&msg, held->frames, held->depth);
  }
  void* frames[kMaxFrames];
  int depth = backtrace(frames, kMaxFrames);
  msg.append("  offending acquisition at:\n");
  AppendFrames(&msg, frames, depth);

  uint64_t n = violation_count.fetch_add(1, std::memory_order_relaxed);
  bool fatal = always_fatal || mode == Mode::kFatal;
  {
    std::lock_guard<std::mutex> lock(diag_mu);
    last_message = msg;
    if (fatal || n < kMaxPrinted) {
      std::fputs(msg.c_str(), stderr);
      std::fflush(stderr);
    }
  }
  if (fatal) std::abort();
}

}  // namespace

namespace detail {

void BeforeLock(const Mutex* mu) {
  // Re-acquire check: the whole stack, fences included — a stolen task
  // re-locking a mutex its host thread holds deadlocks the thread on
  // itself no matter which logical context each acquisition belongs to.
  for (const Entry& e : tls_held) {
    if (e.mu == mu) {
      Mode mode = CurrentMode();
      if (mode == Mode::kOff) return;
      Report(mode, /*always_fatal=*/true,
             "hana lock-order violation: re-acquiring held mutex " +
                 Describe(mu) + " (guaranteed self-deadlock)",
             &e);
      return;  // Unreachable (Report aborts); keeps control flow clear.
    }
  }
  if (mu->rank() < 0) return;  // Anonymous mutexes carry no order.
  // Rank check: strictly increasing within the current fence segment.
  const Entry* worst = nullptr;
  for (auto it = tls_held.rbegin(); it != tls_held.rend(); ++it) {
    if (it->mu == nullptr) break;  // Fence: earlier locks are foreign.
    if (it->mu->rank() >= mu->rank() &&
        (worst == nullptr || it->mu->rank() > worst->mu->rank())) {
      worst = &*it;
    }
  }
  if (worst == nullptr) return;
  Mode mode = CurrentMode();
  if (mode == Mode::kOff) return;
  Report(mode, /*always_fatal=*/false,
         "hana lock-order violation: acquiring " + Describe(mu) +
             " while holding " + Describe(worst->mu) +
             " (ranks must be strictly increasing; see hana::lock_rank)",
         worst);
}

void AfterLock(const Mutex* mu) {
  if (CurrentMode() == Mode::kOff) {
    // Still track holds so re-enabling mid-process cannot see a stale
    // stack for locks released later; the backtrace is skipped.
    tls_held.push_back(Entry{mu, {}, 0});
    return;
  }
  Entry e;
  e.mu = mu;
  e.depth = backtrace(e.frames, kMaxFrames);
  tls_held.push_back(e);
}

void AfterUnlock(const Mutex* mu) {
  // Erase the most recent entry for `mu`. Unlock order need not be
  // LIFO (MutexLock makes it so in practice, but the validator does
  // not require it).
  for (auto it = tls_held.rbegin(); it != tls_held.rend(); ++it) {
    if (it->mu == mu) {
      tls_held.erase(std::next(it).base());
      return;
    }
  }
  // Unlocking a mutex we never saw locked: possible only for locks
  // taken before the validator TU was loaded; ignore.
}

void AssertHeld(const Mutex* mu) {
  // Fences are deliberately ignored: the assertion is about physical
  // ownership (is this thread inside the critical section?), which a
  // stolen task inherits from its host thread.
  for (const Entry& e : tls_held) {
    if (e.mu == mu) return;
  }
  Mode mode = CurrentMode();
  if (mode == Mode::kOff) return;
  Report(mode, /*always_fatal=*/false,
         "hana lock invariant violation: " + Describe(mu) +
             " is required here but not held by this thread",
         nullptr);
}

void PushFence() { tls_held.push_back(Entry{nullptr, {}, 0}); }

void PopFence() {
  for (auto it = tls_held.rbegin(); it != tls_held.rend(); ++it) {
    if (it->mu == nullptr) {
      tls_held.erase(std::next(it).base());
      return;
    }
  }
}

}  // namespace detail

uint64_t ViolationCount() {
  return violation_count.load(std::memory_order_relaxed);
}

void ResetViolations() {
  violation_count.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(diag_mu);
  last_message.clear();
}

std::string LastViolation() {
  std::lock_guard<std::mutex> lock(diag_mu);
  return last_message;
}

}  // namespace hana::lock_order

#endif  // HANA_LOCK_ORDER_CHECKS
