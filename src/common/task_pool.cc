#include "common/task_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>

namespace hana {

TaskPool::TaskPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

TaskPool::~TaskPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  cv_.NotifyAll();
  for (auto& worker : workers_) worker.join();
}

void TaskPool::Enqueue(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.NotifyOne();
}

void TaskPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      // Manual wait loop (rather than a predicate lambda) keeps the
      // guarded reads of shutdown_/queue_ inside the annotated scope.
      while (!shutdown_ && queue_.empty()) cv_.Wait(mu_);
      if (queue_.empty()) return;  // Shutdown with a drained queue.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // Tasks are their own logical context for lock ordering (a worker
    // holds no caller locks, but the fence keeps the rule uniform with
    // the stolen-task path in TryRunOneTask).
    lock_order::Fence fence;
    task();
  }
}

void TaskPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                           size_t max_workers) {
  ParallelForWorker(
      n, [&fn](size_t, size_t i) { fn(i); }, max_workers);
}

size_t TaskPool::WorkerSlots(size_t n, size_t max_workers) const {
  if (n == 0) return 0;
  size_t budget = max_workers == 0 ? num_threads()
                                   : std::min(max_workers, num_threads() + 1);
  return std::min(budget > 0 ? budget - 1 : 0, n - 1) + 1;
}

void TaskPool::ParallelForWorker(
    size_t n, const std::function<void(size_t, size_t)>& fn,
    size_t max_workers) {
  if (n == 0) return;
  // Helpers beyond the caller; never more than there are iterations.
  size_t helpers = WorkerSlots(n, max_workers) - 1;

  struct Shared {
    // atomic: relaxed morsel counter — fetch_add hands out disjoint
    // iterations; no other state is published through it.
    std::atomic<size_t> next{0};
    // atomic: relaxed early-exit flag; the exception itself is
    // published under error_mu, not through this flag.
    std::atomic<bool> failed{false};
    Mutex error_mu{"pool.error", lock_rank::kPoolError};
    std::exception_ptr error GUARDED_BY(error_mu);
  };
  auto shared = std::make_shared<Shared>();

  auto run = [shared, n, &fn](size_t worker) {
    while (true) {
      size_t i = shared->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n || shared->failed.load(std::memory_order_relaxed)) return;
      try {
        fn(worker, i);
      } catch (...) {
        MutexLock lock(shared->error_mu);
        if (!shared->failed.exchange(true)) {
          shared->error = std::current_exception();
        }
        return;
      }
    }
  };

  std::vector<std::future<void>> futures;
  futures.reserve(helpers);
  for (size_t i = 0; i < helpers; ++i) {
    futures.push_back(Submit([run, slot = i + 1] { run(slot); }));
  }
  run(0);  // Caller participates: guarantees progress even when saturated.
  for (auto& f : futures) {
    // Help drain the queue instead of blocking: nested ParallelFor
    // calls would otherwise deadlock once every thread waits on helper
    // tasks that are still queued behind each other.
    while (f.wait_for(std::chrono::seconds(0)) !=
           std::future_status::ready) {
      if (!TryRunOneTask()) {
        f.wait_for(std::chrono::milliseconds(1));
      }
    }
  }
  if (shared->failed.load()) {
    std::exception_ptr error;
    {
      // All helpers have finished (their futures are ready), but the
      // analysis still requires the lock to read the guarded slot.
      MutexLock lock(shared->error_mu);
      error = shared->error;
    }
    std::rethrow_exception(error);
  }
}

bool TaskPool::TryRunOneTask() {
  std::function<void()> task;
  {
    MutexLock lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  // The stolen task runs on a thread that may already hold caller
  // locks (e.g. storage.merge inside ParallelFor's drain loop). Its
  // acquisitions belong to its own logical context, so bracket it with
  // a rank fence; re-acquire detection still sees through the fence.
  lock_order::Fence fence;
  task();
  return true;
}

size_t TaskPool::DefaultDop() {
  if (const char* env = std::getenv("HANA_THREADS")) {
    long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<size_t>(v);
  }
  size_t hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

TaskPool& TaskPool::Global() {
  static TaskPool* pool = [] {
    size_t hw = std::thread::hardware_concurrency();
    size_t threads = std::max<size_t>({DefaultDop(), hw, 8});
    return new TaskPool(threads);
  }();
  return *pool;
}

}  // namespace hana
