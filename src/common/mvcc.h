// MVCC commit-timestamp allocation and row-visibility rules.
//
// The transaction layer owns a single monotonically increasing
// commit-timestamp source (VersionManager). Storage stamps every delta
// row with two 64-bit words in table-level stamp stores:
//
//   created — when the row came into existence:
//     0                      committed "before time began": rows written
//                            through the non-transactional append path.
//                            Always visible. (Zero-initialized stores
//                            make the pure-OLAP fast path free.)
//     kUncommittedBit | txn  written by in-flight transaction `txn`;
//                            visible only to that transaction.
//     kNeverVisible          the writing transaction aborted; the row is
//                            invisible to everyone, forever.
//     ts (plain value)       committed at timestamp ts; visible to reads
//                            at read_ts >= ts.
//
//   deleted — when (if ever) the row was deleted; same encoding, where
//     0 means "not deleted" and kNeverVisible means "deleted for
//     everyone" (used when an aborted creation is folded into the
//     maskless main: the tombstone outlives the stamp's fold boundary).
//
// A reader carries a ReadView {read_ts, txn}: a row is visible iff its
// creation is visible (committed at or before read_ts, or written by the
// reader's own transaction) and its deletion is not. Commit timestamps
// are allocated before stamping and *finished* after every stamp of the
// transaction has been stored, and LastVisible() only advances past a
// timestamp once it is finished — so a new snapshot sees either all of
// a transaction's rows or none (no torn reads across participants).
#ifndef HANA_COMMON_MVCC_H_
#define HANA_COMMON_MVCC_H_

#include <cstdint>
#include <set>

#include "common/sync.h"

namespace hana::mvcc {

using Timestamp = uint64_t;

/// Marker bits in a stamp word. Real timestamps stay below
/// kUncommittedBit, so a stamp with neither bit set is a committed
/// timestamp (or 0, see above).
inline constexpr Timestamp kUncommittedBit = 1ull << 62;
inline constexpr Timestamp kNeverVisible = 1ull << 63;

/// Read timestamp meaning "everything committed", used by latest-view
/// reads that do not care about cross-transaction atomicity and as the
/// "resolve at snapshot open" sentinel in ReadView.
inline constexpr Timestamp kLatest = kUncommittedBit - 1;

constexpr Timestamp MakeUncommitted(uint64_t txn) {
  return kUncommittedBit | txn;
}
constexpr bool IsUncommitted(Timestamp t) {
  return (t & kUncommittedBit) != 0 && (t & kNeverVisible) == 0;
}
constexpr uint64_t TxnOf(Timestamp t) { return t & ~kUncommittedBit; }

/// The reader's position in commit-timestamp order. read_ts == kLatest
/// asks the snapshot-open path to resolve to VersionManager::
/// LastVisible(); txn != 0 additionally exposes that transaction's own
/// uncommitted writes (read-your-own-writes).
struct ReadView {
  Timestamp read_ts = kLatest;
  uint64_t txn = 0;
};

/// Is the row-creation stamp visible under `view`?
constexpr bool CreatedVisible(Timestamp created, const ReadView& view) {
  if (created == 0) return true;
  if ((created & kNeverVisible) != 0) return false;
  if ((created & kUncommittedBit) != 0) {
    return view.txn != 0 && TxnOf(created) == view.txn;
  }
  return created <= view.read_ts;
}

/// Does the row-deletion stamp hide the row under `view`?
constexpr bool DeletedVisible(Timestamp deleted, const ReadView& view) {
  if (deleted == 0) return false;
  if ((deleted & kNeverVisible) != 0) return true;  // deleted for everyone
  if ((deleted & kUncommittedBit) != 0) {
    return view.txn != 0 && TxnOf(deleted) == view.txn;
  }
  return deleted <= view.read_ts;
}

constexpr bool RowVisible(Timestamp created, Timestamp deleted,
                          const ReadView& view) {
  return CreatedVisible(created, view) && !DeletedVisible(deleted, view);
}

/// May a merge fold this creation stamp into the maskless main, given
/// the global watermark (oldest timestamp any live or future reader can
/// hold)? Committed at-or-below the watermark: every reader sees it.
/// Never-visible: no reader sees it (the fold tombstones it). Anything
/// else — uncommitted, or committed past the watermark — must stay in
/// the delta where the visibility mask still applies.
constexpr bool FoldableAt(Timestamp created, Timestamp watermark) {
  if (created == 0) return true;
  if ((created & kNeverVisible) != 0) return true;
  if ((created & kUncommittedBit) != 0) return false;
  return created <= watermark;
}

class VersionManager;

/// RAII registration of an active read snapshot: while alive, the
/// watermark cannot advance past read_ts(), so merges keep every
/// version this reader may still visit. Movable; default-constructed
/// handles are empty (read_ts() == kLatest, nothing registered).
class SnapshotHandle {
 public:
  SnapshotHandle() = default;
  SnapshotHandle(SnapshotHandle&& other) noexcept
      : vm_(other.vm_), ts_(other.ts_) {
    other.vm_ = nullptr;
  }
  SnapshotHandle& operator=(SnapshotHandle&& other) noexcept {
    if (this != &other) {
      Release();
      vm_ = other.vm_;
      ts_ = other.ts_;
      other.vm_ = nullptr;
    }
    return *this;
  }
  SnapshotHandle(const SnapshotHandle&) = delete;
  SnapshotHandle& operator=(const SnapshotHandle&) = delete;
  ~SnapshotHandle() { Release(); }

  /// Deregisters from the watermark registry; no-op if empty.
  void Release();

  Timestamp read_ts() const { return ts_; }
  bool active() const { return vm_ != nullptr; }

 private:
  friend class VersionManager;
  SnapshotHandle(VersionManager* vm, Timestamp ts) : vm_(vm), ts_(ts) {}

  VersionManager* vm_ = nullptr;
  Timestamp ts_ = kLatest;
};

/// The commit-timestamp source and active-snapshot registry. One
/// per database (Global()); tests may instantiate their own.
///
/// Commit protocol: AllocateCommit() hands out the next timestamp and
/// records it in-flight; the caller stores it into every row stamp it
/// owns and then calls FinishCommit(). LastVisible() is the largest
/// timestamp T such that every allocation <= T has finished — the only
/// safe default read timestamp (reading at "latest allocated" could
/// observe half of an in-flight transaction).
class VersionManager {
 public:
  VersionManager() = default;
  VersionManager(const VersionManager&) = delete;
  VersionManager& operator=(const VersionManager&) = delete;

  /// Allocates the next commit timestamp and marks it in-flight.
  Timestamp AllocateCommit();

  /// Marks `ts` durable-and-stamped; idempotent. LastVisible() advances
  /// once no smaller allocation remains in flight. Aborted transactions
  /// that already allocated a timestamp must also finish it (with no
  /// rows stamped) so the visibility horizon is not wedged.
  void FinishCommit(Timestamp ts);

  /// Largest timestamp with no unfinished allocation at or below it.
  Timestamp LastVisible() const;

  /// Allocate-and-finish for single-row non-transactional mutations
  /// (e.g. ColumnTable::DeleteRow outside any transaction). The caller
  /// stores the returned stamp after this returns; readers that race
  /// the store simply keep seeing the pre-mutation version.
  Timestamp StampNonTransactional();

  /// Registers a read snapshot at LastVisible(). While the returned
  /// handle is alive, Watermark() will not advance past its read_ts.
  SnapshotHandle AcquireSnapshot();

  /// Oldest timestamp any live reader may hold: min over registered
  /// snapshots, capped at LastVisible(). Merges may fold (and GC)
  /// versions committed at or before this.
  Timestamp Watermark() const;

  /// Registered snapshot count (introspection for tests).
  size_t ActiveSnapshots() const;

  /// The process-wide instance used by the platform layer.
  static VersionManager& Global();

 private:
  friend class SnapshotHandle;
  void ReleaseSnapshot(Timestamp ts);

  mutable Mutex mu_{"mvcc.version", lock_rank::kMvccVersion};
  Timestamp next_ GUARDED_BY(mu_) = 1;
  Timestamp last_visible_ GUARDED_BY(mu_) = 0;
  std::set<Timestamp> inflight_ GUARDED_BY(mu_);
  std::multiset<Timestamp> snapshots_ GUARDED_BY(mu_);
};

}  // namespace hana::mvcc

#endif  // HANA_COMMON_MVCC_H_
