#ifndef HANA_COMMON_SYNC_H_
#define HANA_COMMON_SYNC_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>

/// Thread-safety annotations for Clang's -Wthread-safety static
/// analysis (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html).
/// Under Clang with HANA_LINT=ON the build promotes violations to
/// errors (-Werror=thread-safety), turning lock-discipline mistakes —
/// touching a GUARDED_BY member without its mutex, double-locking,
/// leaking a lock out of scope — into compile failures. On other
/// compilers every macro expands to nothing, so the annotated code
/// stays portable.
#if defined(__clang__) && !defined(SWIG)
#define HANA_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define HANA_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

#define CAPABILITY(x) HANA_THREAD_ANNOTATION_(capability(x))
#define SCOPED_CAPABILITY HANA_THREAD_ANNOTATION_(scoped_lockable)
#define GUARDED_BY(x) HANA_THREAD_ANNOTATION_(guarded_by(x))
#define PT_GUARDED_BY(x) HANA_THREAD_ANNOTATION_(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) HANA_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) HANA_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))
#define REQUIRES(...) HANA_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define ACQUIRE(...) HANA_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define RELEASE(...) HANA_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) HANA_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) HANA_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define RETURN_CAPABILITY(x) HANA_THREAD_ANNOTATION_(lock_returned(x))
#define ASSERT_CAPABILITY(x) HANA_THREAD_ANNOTATION_(assert_capability(x))
#define NO_THREAD_SAFETY_ANALYSIS HANA_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace hana {

/// The DESIGN.md lock map made executable: every long-lived mutex in
/// the platform registers one of these ranks, and the runtime
/// lock-order validator (below) enforces that a thread only ever
/// acquires locks of strictly increasing rank. Lower rank = acquired
/// first. Keep this table and the DESIGN.md "Lock map" section in sync;
/// the table is the source of truth.
namespace lock_rank {
// catalog.map — Catalog::mu_: name→table map structure. Outermost:
// catalog lookups happen before any engine lock is taken.
inline constexpr int kCatalog = 10;
// esp.engine — esp::Engine::mu_: streams, queries, window state.
inline constexpr int kEspEngine = 20;
// graph.engine — graph::GraphEngine::mu_: adjacency + CSR cache.
inline constexpr int kGraphEngine = 20;
// timeseries.series — timeseries::SeriesTable mu: slot buffers and the
// sealed representation. Same level as the other engine locks: no two
// engine-level locks are ever held together (Correlation/Resample copy
// out under one lock before touching the other series).
inline constexpr int kSeriesTable = 20;
// txn.coordinator — txn::TwoPhaseCoordinator::mu_: txn table + log.
inline constexpr int kTxnCoordinator = 30;
// executor.schedule — exec PipelineExecutor::mu_: pipeline DAG state.
inline constexpr int kExecutorSchedule = 40;
// txn.participant.* — participant staging maps; held across the
// participant's local apply (storage append, adapter ship).
inline constexpr int kTxnParticipant = 40;
// mvcc.version — mvcc::VersionManager::mu_: commit-timestamp allocator,
// in-flight commit set and active-snapshot registry. Taken from the
// coordinator's commit path (under txn.coordinator) and from the
// participant's apply path (under txn.participant.*), and itself before
// any storage lock: snapshot opens resolve the read timestamp and merge
// reads the watermark before touching storage.merge / storage.state.
inline constexpr int kMvccVersion = 45;
// sda.dispatch — federation::SdaRuntime::dispatch_mu_: statement stats
// + virtual-clock hooks.
inline constexpr int kSdaDispatch = 50;
// sda.registry — federation::SdaRuntime::registry_mu_: adapter map;
// ACQUIRED_AFTER(dispatch_mu_).
inline constexpr int kSdaRegistry = 55;
// platform.snapshot_cache — platform::Platform snapshot_cache_mu_: the
// statement-scoped TableReadSnapshot reuse map. Pure map lookups; never
// held while opening a snapshot (which would take mvcc.version and
// storage.state, both ranked around it).
inline constexpr int kPlatformSnapshot = 58;
// storage.merge — storage::ColumnTable merge_mu: serializes delta
// merges; held across the whole merge including its ParallelFor.
inline constexpr int kStorageMerge = 60;
// storage.state — storage::ColumnTable state_mu: column part pointers
// and delta buffers; taken inside merge_mu during merge phases.
inline constexpr int kStorageState = 65;
// txn.fault_injector — txn::FaultInjector::mu_: failure schedule;
// taken from coordinator/participant code paths.
inline constexpr int kFaultInjector = 70;
// pool.error — TaskPool ParallelFor Shared::error_mu: first-error
// slot; taken from worker lambdas that may run under engine locks.
inline constexpr int kPoolError = 80;
// pool.queue — TaskPool::mu_: the task queue. Strict leaf: no task
// submission path may require another platform lock afterwards.
inline constexpr int kPoolQueue = 90;
}  // namespace lock_rank

class Mutex;

/// Runtime lock-order validator. Compiled in when the build defines
/// HANA_LOCK_ORDER_CHECKS (the default for every build type except
/// Release — see the top-level CMakeLists). Each thread keeps a TLS
/// stack of the Mutexes it holds; acquiring a ranked Mutex whose rank
/// is not strictly greater than every ranked Mutex already held — or
/// re-acquiring any held Mutex — is a violation. The HANA_LOCK_ORDER
/// environment variable picks the response, read at violation time so
/// tests can flip it per-process:
///   off    — no checking.
///   report — (default) print a diagnostic with both lock names and
///            acquisition backtraces, count it, continue.
///   fatal  — print the diagnostic and abort().
/// Re-acquiring a held Mutex always aborts (unless off): continuing
/// would deadlock the thread on itself, which is strictly worse than
/// an abort with a backtrace.
namespace lock_order {
namespace detail {
void BeforeLock(const Mutex* mu);
void AfterLock(const Mutex* mu);
void AfterUnlock(const Mutex* mu);
void AssertHeld(const Mutex* mu);
void PushFence();
void PopFence();
}  // namespace detail

#ifdef HANA_LOCK_ORDER_CHECKS
/// Number of violations observed by this process (report mode).
uint64_t ViolationCount();
/// Resets the counter and the last-violation message (test hook).
void ResetViolations();
/// Human-readable description of the most recent violation.
std::string LastViolation();
#else
inline uint64_t ViolationCount() { return 0; }
inline void ResetViolations() {}
inline std::string LastViolation() { return {}; }
#endif

/// RAII rank fence. The task pool runs stolen tasks on threads that may
/// already hold caller locks (TryRunOneTask inside ParallelFor's drain
/// loop); a stolen task's acquisitions belong to its own logical
/// context, so the pool brackets task execution with a Fence and the
/// validator compares ranks only against locks acquired after the most
/// recent fence. Re-acquire detection still looks through fences — a
/// stolen task re-locking a mutex its host thread holds is a genuine
/// self-deadlock.
class Fence {
 public:
#ifdef HANA_LOCK_ORDER_CHECKS
  Fence() { detail::PushFence(); }
  ~Fence() { detail::PopFence(); }
#else
  Fence() {}
  ~Fence() {}  // User-provided: keeps `Fence f;` from warning as unused.
#endif
  Fence(const Fence&) = delete;
  Fence& operator=(const Fence&) = delete;
};
}  // namespace lock_order

/// The platform's mutex: std::mutex wrapped so the analysis can name it
/// as a capability. All locking in the platform goes through Mutex /
/// MutexLock — scripts/lint.sh rejects naked std::mutex / lock_guard
/// outside common/sync.{h,cc}, so every lock is visible to
/// -Wthread-safety.
///
/// Long-lived platform mutexes use the named constructor, which also
/// registers the lock with the runtime lock-order validator. The
/// default constructor creates an anonymous, unranked Mutex (ad-hoc
/// and test locks): exempt from rank ordering, still covered by
/// re-acquire detection.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  /// Named, ranked mutex; `name` must have static storage duration
  /// (pass a string literal) and `rank` comes from hana::lock_rank.
  Mutex(const char* name, int rank) : name_(name), rank_(rank) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() {
#ifdef HANA_LOCK_ORDER_CHECKS
    lock_order::detail::BeforeLock(this);
#endif
    mu_.lock();
#ifdef HANA_LOCK_ORDER_CHECKS
    lock_order::detail::AfterLock(this);
#endif
  }
  void Unlock() RELEASE() {
#ifdef HANA_LOCK_ORDER_CHECKS
    lock_order::detail::AfterUnlock(this);
#endif
    mu_.unlock();
  }
  bool TryLock() TRY_ACQUIRE(true) {
#ifdef HANA_LOCK_ORDER_CHECKS
    // Checked before the attempt: a try-lock that *would* invert the
    // order is a code-path violation whether or not it wins the race,
    // and try-locking a mutex this thread already holds is UB.
    lock_order::detail::BeforeLock(this);
#endif
    bool acquired = mu_.try_lock();
#ifdef HANA_LOCK_ORDER_CHECKS
    if (acquired) lock_order::detail::AfterLock(this);
#endif
    return acquired;
  }

  /// Declares (to Clang's analysis) and verifies (via the runtime
  /// validator) that the calling thread holds this mutex. This is the
  /// cross-object REQUIRES: when a callee's lock is reached through a
  /// pointer (query->engine_->mu_), the static analysis cannot equate
  /// the caller's held capability with the callee's requirement, so the
  /// callee asserts it at entry instead — statically introducing the
  /// capability for its GUARDED_BY members and dynamically aborting or
  /// reporting (per HANA_LOCK_ORDER) if the lock is in fact not held.
  void AssertHeld() const ASSERT_CAPABILITY(this) {
#ifdef HANA_LOCK_ORDER_CHECKS
    lock_order::detail::AssertHeld(this);
#endif
  }

  const char* name() const { return name_; }
  int rank() const { return rank_; }

 private:
  friend class CondVar;
  std::mutex mu_;
  const char* name_ = "anon";
  int rank_ = -1;  // Unranked: exempt from ordering checks.
};

/// RAII scoped lock over Mutex, the analogue of std::lock_guard. The
/// SCOPED_CAPABILITY attribute lets the analysis treat construction as
/// acquiring the mutex and destruction as releasing it, so GUARDED_BY
/// members are accessible exactly within the guard's scope.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with Mutex. Wait() takes the Mutex (not
/// the MutexLock) so the REQUIRES annotation names the capability the
/// caller must hold; the caller supplies its own while-loop around the
/// wait, which keeps the guarded predicate check inside the annotated
/// scope instead of an opaque lambda.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks until notified, and reacquires
  /// `mu` before returning. Spurious wakeups are possible; callers loop.
  /// Ownership conceptually stays with the caller throughout, so the
  /// lock-order validator keeps the mutex on the held stack across the
  /// wait (the thread runs no code of its own while parked).
  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> inner(mu.mu_, std::adopt_lock);
    cv_.wait(inner);
    inner.release();  // Ownership stays with the caller's MutexLock.
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace hana

#endif  // HANA_COMMON_SYNC_H_
