#ifndef HANA_COMMON_SYNC_H_
#define HANA_COMMON_SYNC_H_

#include <condition_variable>
#include <mutex>

/// Thread-safety annotations for Clang's -Wthread-safety static
/// analysis (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html).
/// Under Clang with HANA_LINT=ON the build promotes violations to
/// errors (-Werror=thread-safety), turning lock-discipline mistakes —
/// touching a GUARDED_BY member without its mutex, double-locking,
/// leaking a lock out of scope — into compile failures. On other
/// compilers every macro expands to nothing, so the annotated code
/// stays portable.
#if defined(__clang__) && !defined(SWIG)
#define HANA_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define HANA_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

#define CAPABILITY(x) HANA_THREAD_ANNOTATION_(capability(x))
#define SCOPED_CAPABILITY HANA_THREAD_ANNOTATION_(scoped_lockable)
#define GUARDED_BY(x) HANA_THREAD_ANNOTATION_(guarded_by(x))
#define PT_GUARDED_BY(x) HANA_THREAD_ANNOTATION_(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) HANA_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) HANA_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))
#define REQUIRES(...) HANA_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define ACQUIRE(...) HANA_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define RELEASE(...) HANA_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) HANA_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) HANA_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define RETURN_CAPABILITY(x) HANA_THREAD_ANNOTATION_(lock_returned(x))
#define ASSERT_CAPABILITY(x) HANA_THREAD_ANNOTATION_(assert_capability(x))
#define NO_THREAD_SAFETY_ANALYSIS HANA_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace hana {

/// The platform's mutex: std::mutex wrapped so the analysis can name it
/// as a capability. All locking in the platform goes through Mutex /
/// MutexLock — scripts/lint.sh rejects naked std::mutex / lock_guard
/// outside this header, so every lock is visible to -Wthread-safety.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII scoped lock over Mutex, the analogue of std::lock_guard. The
/// SCOPED_CAPABILITY attribute lets the analysis treat construction as
/// acquiring the mutex and destruction as releasing it, so GUARDED_BY
/// members are accessible exactly within the guard's scope.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with Mutex. Wait() takes the Mutex (not
/// the MutexLock) so the REQUIRES annotation names the capability the
/// caller must hold; the caller supplies its own while-loop around the
/// wait, which keeps the guarded predicate check inside the annotated
/// scope instead of an opaque lambda.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks until notified, and reacquires
  /// `mu` before returning. Spurious wakeups are possible; callers loop.
  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> inner(mu.mu_, std::adopt_lock);
    cv_.wait(inner);
    inner.release();  // Ownership stays with the caller's MutexLock.
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace hana

#endif  // HANA_COMMON_SYNC_H_
