#ifndef HANA_COMMON_CPU_DISPATCH_H_
#define HANA_COMMON_CPU_DISPATCH_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/result.h"

namespace hana {

/// Runtime CPU-feature dispatch for the hot scan/filter/hash kernels.
///
/// The instruction-set level is probed once (CPUID via
/// __builtin_cpu_supports) and a table of per-kernel function pointers
/// is bound to the best implementation the host supports. Call sites
/// grab the table through Kernels() and stay branch-free inside their
/// loops; nothing outside this module spells a raw intrinsic
/// (scripts/lint.sh enforces that).
///
/// Bit-identity guarantee: every accelerated kernel computes the exact
/// same bytes as its scalar reference — they are integer-exact
/// algorithms, and BindNativeTable() additionally verifies each
/// candidate against the scalar implementation on an adversarial probe
/// vector at bind time, demoting any kernel that disagrees. `HANA_CPU=
/// scalar` (env or the platform `cpu` knob) forces the reference table,
/// which is how the kernels test matrix proves scalar-vs-native
/// equivalence end to end.
enum class CpuLevel {
  kScalar = 0,  // Reference implementations, no ISA assumptions.
  kSse42 = 1,
  kAvx2 = 2,
  kAvx512 = 3,  // Requires avx512f + avx512bw.
};

const char* CpuLevelName(CpuLevel level);

/// Highest level the host CPU supports (cached CPUID probe).
CpuLevel DetectedCpuLevel();

/// Level the bound kernel table actually runs at (detection clamped by
/// the HANA_CPU override).
CpuLevel ActiveCpuLevel();

/// Comparison selector for the filter kernel (mirrors sql::BinaryOp's
/// comparison subset; kept as a plain enum so storage/common code does
/// not depend on the SQL layer).
enum class CmpOp { kEq = 0, kNe, kLt, kLe, kGt, kGe };

/// The dispatch table. All kernels are pure functions of their inputs;
/// accelerated variants are bit-identical to the scalar references.
struct CpuKernels {
  /// Unpacks `count` codes of `bits` (1..32) starting at logical index
  /// `start` from a packed word array of `num_words` words.
  void (*bit_unpack)(const uint64_t* words, size_t num_words, int bits,
                     size_t start, size_t count, uint32_t* out);

  /// Packs `count` codes at `bits` into a zero-initialized word array
  /// starting at logical index `start`; requires (start * bits) % 64 ==
  /// 0 (the storage::BitPackInto contract).
  void (*bit_pack)(uint64_t* words, int bits, size_t start,
                   const uint32_t* values, size_t count);

  /// Join-key hash batch: out[i] = HashCombine(seed, H(v[i])) where H
  /// reproduces Value::Hash for int64 (integers whose double image is
  /// exact hash via std::hash<int64_t>, the rest via the double image).
  void (*hash_i64)(const int64_t* v, size_t count, uint64_t seed,
                   uint64_t* out);

  /// Filter compare: out[i] = (v[i] op rhs) ? 1 : 0 for non-null rows;
  /// rows with nulls[i] != 0 yield 0 (SQL: NULL compares to NULL, the
  /// filter drops the row). `nulls` may be null meaning "no nulls".
  void (*cmp_i64)(CmpOp op, const int64_t* v, const uint8_t* nulls,
                  size_t count, int64_t rhs, uint8_t* out);
};

/// The active dispatch table (bound once at first use; rebindable via
/// SetCpuMode). The returned reference is to an immutable table.
const CpuKernels& Kernels();

/// The scalar reference table, always available (used by the kernels
/// bit-identity tests to diff against whatever Kernels() is bound to).
const CpuKernels& ScalarKernels();

/// Override knob: "native" binds the best verified table for the host,
/// "scalar" forces the reference table. The HANA_CPU environment
/// variable applies the same override at process start-up; this
/// function (reached through the platform `cpu` parameter) rebinds at
/// runtime. Returns InvalidArgument for anything else.
[[nodiscard]] Status SetCpuMode(const std::string& mode);

/// Current mode as a string ("native" or "scalar") for SHOW/debug.
std::string CpuModeString();

}  // namespace hana

#endif  // HANA_COMMON_CPU_DISPATCH_H_
