#ifndef HANA_COMMON_TASK_POOL_H_
#define HANA_COMMON_TASK_POOL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/sync.h"

namespace hana {

/// Fixed-size worker pool backing every parallel code path in the
/// platform (morsel-driven scans, parallel aggregation, concurrent
/// federation dispatch). Tasks are plain closures executed FIFO.
///
/// Blocking on a future inside a worker is safe only when other workers
/// remain free; ParallelFor instead uses caller participation (the
/// submitting thread drains the same morsel counter as the workers), so
/// nested ParallelFor calls never deadlock even on a saturated pool.
class TaskPool {
 public:
  explicit TaskPool(size_t num_threads);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a closure; the future carries its result or exception.
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(
        std::forward<Fn>(fn));
    std::future<R> future = task->get_future();
    Enqueue([task] { (*task)(); });
    return future;
  }

  /// Runs fn(i) for every i in [0, n). Up to `max_workers - 1` pool
  /// workers help (0 = use the whole pool); the calling thread always
  /// participates, so max_workers == 1 degenerates to an inline loop.
  /// Work is handed out dynamically (morsel stealing) via a shared
  /// counter. Returns after every iteration finished; the first
  /// exception thrown by any iteration is rethrown on the caller.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                   size_t max_workers = 0);

  /// Like ParallelFor, but every participating thread is handed a stable
  /// worker slot in [0, WorkerSlots(n, max_workers)) alongside the
  /// iteration index, so iterations can reuse per-worker scratch (radix
  /// partition buffers, hash staging) without locks: slot s is only ever
  /// used by one thread for the duration of the call. Which slot runs
  /// which iteration varies with scheduling, so deterministic output
  /// must never depend on the slot id — only on the iteration index.
  void ParallelForWorker(
      size_t n, const std::function<void(size_t worker, size_t i)>& fn,
      size_t max_workers = 0);

  /// Number of worker slots a ParallelForWorker(n, ..., max_workers)
  /// call would use (caller + helpers); for sizing scratch arrays.
  size_t WorkerSlots(size_t n, size_t max_workers = 0) const;

  /// Pops and runs one queued task if any, returning whether one ran.
  /// Lets a thread that must await an out-of-pool condition (a future
  /// from Submit, a 2PC vote straggler, a fault-injection latch) keep
  /// the pool draining instead of blocking a slot: loop on this between
  /// short waits, as ParallelFor does internally. The task runs on the
  /// calling thread, so don't call while holding any lock a task might
  /// also take.
  bool TryRunOneTask() EXCLUDES(mu_);

  /// The process-wide pool. Sized by the HANA_THREADS environment
  /// variable when set, otherwise max(hardware_concurrency, 8) so that
  /// explicitly requested degrees of parallelism up to 8 get dedicated
  /// workers even on small machines.
  static TaskPool& Global();

  /// The default degree of parallelism: HANA_THREADS when set, else
  /// hardware_concurrency (at least 1).
  static size_t DefaultDop();

 private:
  void Enqueue(std::function<void()> task) EXCLUDES(mu_);
  void WorkerLoop() EXCLUDES(mu_);

  /// Guards the task queue and the shutdown flag; workers block on cv_
  /// while both are empty/false. Lock order: mu_ is a leaf — no other
  /// Mutex in the platform is acquired while holding it (rank
  /// pool.queue = 90, the highest rank in the table; the runtime
  /// validator enforces this on every build).
  Mutex mu_{"pool.queue", lock_rank::kPoolQueue};
  CondVar cv_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  bool shutdown_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace hana

#endif  // HANA_COMMON_TASK_POOL_H_
