#ifndef HANA_COMMON_VALUE_H_
#define HANA_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/result.h"
#include "common/status.h"

namespace hana {

/// Logical column types of the platform. DATE is stored as days since
/// 1970-01-01 (int64 payload); TIMESTAMP as microseconds since epoch.
enum class DataType {
  kNull = 0,
  kBool,
  kInt64,
  kDouble,
  kString,
  kDate,
  kTimestamp,
};

/// Canonical SQL-ish name ("BIGINT", "DOUBLE", "VARCHAR", ...).
const char* DataTypeName(DataType type);

/// Parses a SQL type name (case-insensitive; accepts common aliases like
/// INT, INTEGER, DECIMAL, VARCHAR(n), CHAR(n), TEXT, REAL, FLOAT).
[[nodiscard]] Result<DataType> DataTypeFromName(const std::string& name);

/// True for kInt64/kDouble/kDate/kTimestamp (types with a numeric order).
bool IsNumericType(DataType type);

/// A dynamically typed scalar. Null is represented by type() == kNull.
/// Values are ordered and hashable so they can drive joins, group-bys and
/// sorts. Numeric comparisons across kInt64/kDouble coerce to double.
class Value {
 public:
  Value() : type_(DataType::kNull) {}

  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(DataType::kBool, v); }
  static Value Int(int64_t v) { return Value(DataType::kInt64, v); }
  static Value Double(double v) { return Value(DataType::kDouble, v); }
  static Value String(std::string v) {
    return Value(DataType::kString, std::move(v));
  }
  static Value Date(int64_t days) { return Value(DataType::kDate, days); }
  static Value Timestamp(int64_t micros) {
    return Value(DataType::kTimestamp, micros);
  }

  DataType type() const { return type_; }
  bool is_null() const { return type_ == DataType::kNull; }

  bool bool_value() const { return std::get<bool>(data_); }
  int64_t int_value() const { return std::get<int64_t>(data_); }
  double double_value() const { return std::get<double>(data_); }
  const std::string& string_value() const { return std::get<std::string>(data_); }

  /// Numeric view: int64/date/timestamp/bool widened to double.
  double AsDouble() const;
  /// Integer view: double truncated; bool as 0/1.
  int64_t AsInt() const;

  /// Total order used by ORDER BY and B-tree style comparisons.
  /// Nulls sort first; mismatched non-numeric types order by type id.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Stable hash consistent with operator== (numeric coercion included).
  size_t Hash() const;

  /// Human-readable rendering; dates/timestamps in ISO form.
  std::string ToString() const;

  /// Casts to `target`, applying string<->numeric and date conversions.
  [[nodiscard]] Result<Value> CastTo(DataType target) const;

 private:
  Value(DataType type, bool v) : type_(type), data_(v) {}
  Value(DataType type, int64_t v) : type_(type), data_(v) {}
  Value(DataType type, double v) : type_(type), data_(v) {}
  Value(DataType type, std::string v) : type_(type), data_(std::move(v)) {}

  DataType type_;
  std::variant<std::monostate, bool, int64_t, double, std::string> data_;
};

/// Parses "YYYY-MM-DD" into days since 1970-01-01 (proleptic Gregorian).
[[nodiscard]] Result<int64_t> ParseDate(const std::string& text);

/// Formats days since epoch as "YYYY-MM-DD".
std::string FormatDate(int64_t days);

/// Days since epoch for a calendar date (civil-days algorithm).
int64_t DaysFromCivil(int year, int month, int day);

}  // namespace hana

#endif  // HANA_COMMON_VALUE_H_
