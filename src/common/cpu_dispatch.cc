#include "common/cpu_dispatch.h"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <vector>

#include "common/util.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define HANA_CPU_X86 1
#include <immintrin.h>
#endif

namespace hana {
namespace {

// ---------------------------------------------------------------------
// Scalar reference kernels. These define the bytes every accelerated
// variant must reproduce; bit_unpack/bit_pack mirror storage::BitGet /
// storage::BitPackInto exactly.
// ---------------------------------------------------------------------

void ScalarBitUnpack(const uint64_t* words, size_t num_words, int bits,
                     size_t start, size_t count, uint32_t* out) {
  (void)num_words;
  const uint64_t mask = (1ULL << bits) - 1;  // bits is 1..32.
  for (size_t i = 0; i < count; ++i) {
    size_t bit = (start + i) * static_cast<size_t>(bits);
    size_t word = bit / 64;
    size_t off = bit % 64;
    uint64_t v = words[word] >> off;
    if (off + static_cast<size_t>(bits) > 64) {
      v |= words[word + 1] << (64 - off);
    }
    out[i] = static_cast<uint32_t>(v & mask);
  }
}

void ScalarBitPack(uint64_t* words, int bits, size_t start,
                   const uint32_t* values, size_t count) {
  for (size_t i = 0; i < count; ++i) {
    size_t bit = (start + i) * static_cast<size_t>(bits);
    size_t word = bit / 64;
    size_t off = bit % 64;
    words[word] |= static_cast<uint64_t>(values[i]) << off;
    if (off + static_cast<size_t>(bits) > 64) {
      words[word + 1] |= static_cast<uint64_t>(values[i]) >> (64 - off);
    }
  }
}

/// Reproduces Value::Hash for int64/date/timestamp: integers whose
/// double image lands in the exactly-representable window hash through
/// std::hash<int64_t> (so 1 and 1.0 collide); the rest hash the image.
inline uint64_t HashIntLane(int64_t v) {
  double d = static_cast<double>(v);
  if (d == std::floor(d) && d >= -9.0e15 && d <= 9.0e15) {
    return std::hash<int64_t>()(v);
  }
  return std::hash<double>()(d);
}

void ScalarHashI64(const int64_t* v, size_t count, uint64_t seed,
                   uint64_t* out) {
  for (size_t i = 0; i < count; ++i) {
    out[i] = HashCombine(seed, HashIntLane(v[i]));
  }
}

inline bool CmpLane(CmpOp op, int64_t a, int64_t b) {
  switch (op) {
    case CmpOp::kEq: return a == b;
    case CmpOp::kNe: return a != b;
    case CmpOp::kLt: return a < b;
    case CmpOp::kLe: return a <= b;
    case CmpOp::kGt: return a > b;
    case CmpOp::kGe: return a >= b;
  }
  return false;
}

void ScalarCmpI64(CmpOp op, const int64_t* v, const uint8_t* nulls,
                  size_t count, int64_t rhs, uint8_t* out) {
  for (size_t i = 0; i < count; ++i) {
    bool keep = CmpLane(op, v[i], rhs) && (nulls == nullptr || nulls[i] == 0);
    out[i] = keep ? 1 : 0;
  }
}

// ---------------------------------------------------------------------
// Tuned portable kernels (no intrinsics, still "native"): the packer
// accumulates into a register and stores whole words instead of
// read-modify-writing memory per element. Identical bytes by
// construction (aligned-start contract: the range's partial word can
// only be the array's final word, which no other range touches).
// ---------------------------------------------------------------------

void FastBitPack(uint64_t* words, int bits, size_t start,
                 const uint32_t* values, size_t count) {
  uint64_t* w = words + (start * static_cast<size_t>(bits)) / 64;
  uint64_t acc = *w;  // Preserve any bits a prior unaligned caller left.
  int off = static_cast<int>((start * static_cast<size_t>(bits)) % 64);
  for (size_t i = 0; i < count; ++i) {
    acc |= static_cast<uint64_t>(values[i]) << off;
    off += bits;
    if (off >= 64) {
      *w++ = acc;
      off -= 64;
      acc = off != 0
                ? static_cast<uint64_t>(values[i]) >> (bits - off)
                : 0;
    }
  }
  if (off != 0) *w |= acc;
}

#if HANA_CPU_X86

// ---------------------------------------------------------------------
// AVX2 kernels.
// ---------------------------------------------------------------------

__attribute__((target("avx2"))) void Avx2BitUnpack(const uint64_t* words,
                                                   size_t num_words, int bits,
                                                   size_t start, size_t count,
                                                   uint32_t* out) {
  const uint64_t mask = (1ULL << bits) - 1;
  // The vector body reads words[word+1] unconditionally, so stop it
  // before any lane's word index can reach the final word.
  size_t safe = 0;
  if (num_words >= 2) {
    // word(i) = ((start+i)*bits)/64 <= num_words-2
    //   <=> (start+i)*bits < (num_words-1)*64.
    size_t limit_bits = (num_words - 1) * 64;
    size_t start_bits = start * static_cast<size_t>(bits);
    if (limit_bits > start_bits) {
      safe = (limit_bits - start_bits + static_cast<size_t>(bits) - 1) /
                 static_cast<size_t>(bits) -
             1;
      if (safe > count) safe = count;
    }
  }
  // lint: reinterpret_cast allowed — gather intrinsics take long long*,
  // same representation as the uint64_t word array.
  const long long* base = reinterpret_cast<const long long*>(words);
  const __m256i vmask = _mm256_set1_epi64x(static_cast<long long>(mask));
  const __m256i v64 = _mm256_set1_epi64x(64);
  size_t i = 0;
  for (; i + 4 <= safe; i += 4) {
    size_t bit0 = (start + i) * static_cast<size_t>(bits);
    __m256i bit = _mm256_add_epi64(
        _mm256_set1_epi64x(static_cast<long long>(bit0)),
        _mm256_set_epi64x(3LL * bits, 2LL * bits, 1LL * bits, 0));
    __m256i word = _mm256_srli_epi64(bit, 6);
    __m256i off = _mm256_and_si256(bit, _mm256_set1_epi64x(63));
    __m256i lo = _mm256_i64gather_epi64(base, word, 8);
    __m256i hi = _mm256_i64gather_epi64(
        base, _mm256_add_epi64(word, _mm256_set1_epi64x(1)), 8);
    // off==0 => shift count 64 => srlv/sllv yield 0, exactly the
    // "no straddle" case.
    __m256i v = _mm256_or_si256(_mm256_srlv_epi64(lo, off),
                                _mm256_sllv_epi64(hi, _mm256_sub_epi64(v64, off)));
    v = _mm256_and_si256(v, vmask);
    // Pack the four 64-bit lanes' low dwords into one 128-bit store.
    __m256i packed = _mm256_permutevar8x32_epi32(
        v, _mm256_set_epi32(7, 7, 7, 7, 6, 4, 2, 0));
    // lint: reinterpret_cast allowed — unaligned SSE store to the
    // caller's uint32_t output buffer.
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm256_castsi256_si128(packed));
  }
  if (i < count) {
    ScalarBitUnpack(words, num_words, bits, start + i, count - i, out + i);
  }
}

__attribute__((target("avx2"))) void Avx2HashI64(const int64_t* v, size_t count,
                                                 uint64_t seed, uint64_t* out) {
  // HashCombine(seed, h) = seed ^ (h + K) with K constant per batch,
  // and for lanes in [-9e15, 9e15] (all < 2^53, so the double image is
  // exact) h is std::hash<int64_t>(v), verified identity at bind time.
  const uint64_t addend =
      0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
  const __m256i vadd = _mm256_set1_epi64x(static_cast<long long>(addend));
  const __m256i vseed = _mm256_set1_epi64x(static_cast<long long>(seed));
  const __m256i vhi = _mm256_set1_epi64x(9000000000000000LL);
  const __m256i vlo = _mm256_set1_epi64x(-9000000000000000LL);
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    // lint: reinterpret_cast allowed — unaligned load of the caller's
    // int64_t key array.
    __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    __m256i oob = _mm256_or_si256(_mm256_cmpgt_epi64(x, vhi),
                                  _mm256_cmpgt_epi64(vlo, x));
    if (_mm256_testz_si256(oob, oob)) {
      __m256i h = _mm256_xor_si256(_mm256_add_epi64(x, vadd), vseed);
      // lint: reinterpret_cast allowed — unaligned store to the
      // caller's uint64_t hash array.
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), h);
    } else {
      for (size_t j = 0; j < 4; ++j) {
        out[i + j] = HashCombine(seed, HashIntLane(v[i + j]));
      }
    }
  }
  for (; i < count; ++i) out[i] = HashCombine(seed, HashIntLane(v[i]));
}

__attribute__((target("avx2"))) void Avx2CmpI64(CmpOp op, const int64_t* v,
                                                const uint8_t* nulls,
                                                size_t count, int64_t rhs,
                                                uint8_t* out) {
  const __m256i vrhs = _mm256_set1_epi64x(static_cast<long long>(rhs));
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    // lint: reinterpret_cast allowed — unaligned load of the caller's
    // int64_t value array.
    __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    __m256i m;
    switch (op) {
      case CmpOp::kEq:
        m = _mm256_cmpeq_epi64(x, vrhs);
        break;
      case CmpOp::kNe:
        m = _mm256_cmpeq_epi64(x, vrhs);
        m = _mm256_xor_si256(m, _mm256_set1_epi64x(-1));
        break;
      case CmpOp::kLt:
        m = _mm256_cmpgt_epi64(vrhs, x);
        break;
      case CmpOp::kLe:  // !(x > rhs)
        m = _mm256_cmpgt_epi64(x, vrhs);
        m = _mm256_xor_si256(m, _mm256_set1_epi64x(-1));
        break;
      case CmpOp::kGt:
        m = _mm256_cmpgt_epi64(x, vrhs);
        break;
      case CmpOp::kGe:  // !(rhs > x)
        m = _mm256_cmpgt_epi64(vrhs, x);
        m = _mm256_xor_si256(m, _mm256_set1_epi64x(-1));
        break;
    }
    int lanes = _mm256_movemask_pd(_mm256_castsi256_pd(m));
    for (size_t j = 0; j < 4; ++j) {
      bool keep = ((lanes >> j) & 1) != 0 &&
                  (nulls == nullptr || nulls[i + j] == 0);
      out[i + j] = keep ? 1 : 0;
    }
  }
  if (i < count) {
    ScalarCmpI64(op, v + i, nulls == nullptr ? nullptr : nulls + i, count - i,
                 rhs, out + i);
  }
}

// ---------------------------------------------------------------------
// AVX-512 kernels (F + BW): 8-lane unpack with a native 64->32 narrow,
// and mask-register compares.
// ---------------------------------------------------------------------

__attribute__((target("avx512f,avx512bw"))) void Avx512BitUnpack(
    const uint64_t* words, size_t num_words, int bits, size_t start,
    size_t count, uint32_t* out) {
  const uint64_t mask = (1ULL << bits) - 1;
  size_t safe = 0;
  if (num_words >= 2) {
    size_t limit_bits = (num_words - 1) * 64;
    size_t start_bits = start * static_cast<size_t>(bits);
    if (limit_bits > start_bits) {
      safe = (limit_bits - start_bits + static_cast<size_t>(bits) - 1) /
                 static_cast<size_t>(bits) -
             1;
      if (safe > count) safe = count;
    }
  }
  // lint: reinterpret_cast allowed — gather intrinsics take long long*,
  // same representation as the uint64_t word array.
  const long long* base = reinterpret_cast<const long long*>(words);
  const __m512i vmask = _mm512_set1_epi64(static_cast<long long>(mask));
  const __m512i v64 = _mm512_set1_epi64(64);
  // Per-lane bit offsets computed scalar-side (the 64-bit vector
  // multiply would need AVX512DQ, which we don't require).
  const long long b = bits;
  const __m512i lane_bits =
      _mm512_set_epi64(7 * b, 6 * b, 5 * b, 4 * b, 3 * b, 2 * b, b, 0);
  size_t i = 0;
  for (; i + 8 <= safe; i += 8) {
    size_t bit0 = (start + i) * static_cast<size_t>(bits);
    __m512i bit = _mm512_add_epi64(
        _mm512_set1_epi64(static_cast<long long>(bit0)), lane_bits);
    __m512i word = _mm512_srli_epi64(bit, 6);
    __m512i off = _mm512_and_si512(bit, _mm512_set1_epi64(63));
    __m512i lo = _mm512_i64gather_epi64(word, base, 8);
    __m512i hi = _mm512_i64gather_epi64(
        _mm512_add_epi64(word, _mm512_set1_epi64(1)), base, 8);
    __m512i v = _mm512_or_si512(
        _mm512_srlv_epi64(lo, off),
        _mm512_sllv_epi64(hi, _mm512_sub_epi64(v64, off)));
    v = _mm512_and_si512(v, vmask);
    // lint: reinterpret_cast allowed — unaligned narrow store to the
    // caller's uint32_t output buffer.
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm512_cvtepi64_epi32(v));
  }
  if (i < count) {
    ScalarBitUnpack(words, num_words, bits, start + i, count - i, out + i);
  }
}

__attribute__((target("avx512f,avx512bw"))) void Avx512CmpI64(
    CmpOp op, const int64_t* v, const uint8_t* nulls, size_t count,
    int64_t rhs, uint8_t* out) {
  const __m512i vrhs = _mm512_set1_epi64(static_cast<long long>(rhs));
  size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    // lint: reinterpret_cast allowed — unaligned load of the caller's
    // int64_t value array.
    __m512i x = _mm512_loadu_si512(reinterpret_cast<const void*>(v + i));
    __mmask8 m;
    switch (op) {
      case CmpOp::kEq: m = _mm512_cmpeq_epi64_mask(x, vrhs); break;
      case CmpOp::kNe: m = _mm512_cmpneq_epi64_mask(x, vrhs); break;
      case CmpOp::kLt: m = _mm512_cmplt_epi64_mask(x, vrhs); break;
      case CmpOp::kLe: m = _mm512_cmple_epi64_mask(x, vrhs); break;
      case CmpOp::kGt: m = _mm512_cmpgt_epi64_mask(x, vrhs); break;
      default: m = _mm512_cmpge_epi64_mask(x, vrhs); break;
    }
    for (size_t j = 0; j < 8; ++j) {
      bool keep = ((m >> j) & 1) != 0 &&
                  (nulls == nullptr || nulls[i + j] == 0);
      out[i + j] = keep ? 1 : 0;
    }
  }
  if (i < count) {
    ScalarCmpI64(op, v + i, nulls == nullptr ? nullptr : nulls + i, count - i,
                 rhs, out + i);
  }
}

#endif  // HANA_CPU_X86

// ---------------------------------------------------------------------
// Detection, bind-time verification and table management.
// ---------------------------------------------------------------------

CpuLevel ProbeCpu() {
#if HANA_CPU_X86
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512bw")) {
    return CpuLevel::kAvx512;
  }
  if (__builtin_cpu_supports("avx2")) return CpuLevel::kAvx2;
  if (__builtin_cpu_supports("sse4.2")) return CpuLevel::kSse42;
#endif
  return CpuLevel::kScalar;
}

/// Adversarial probe inputs for the bind-time self-check: boundary
/// magnitudes for the hash window, every bit width for pack/unpack,
/// misaligned starts, and sign patterns for the compares.
struct ProbeData {
  std::vector<int64_t> ints;
  std::vector<uint8_t> nulls;
  ProbeData() {
    ints = {0,  1,  -1, 42, -42, 9000000000000000LL, -9000000000000000LL,
            9000000000000001LL, -9000000000000001LL, INT64_MAX, INT64_MIN,
            1LL << 52, -(1LL << 52), 999, -999, 7};
    uint64_t s = 0x243f6a8885a308d3ULL;
    for (int i = 0; i < 240; ++i) {
      s = s * 6364136223846793005ULL + 1442695040888963407ULL;
      ints.push_back(static_cast<int64_t>(s >> (i % 3 == 0 ? 1 : 40)));
    }
    nulls.assign(ints.size(), 0);
    for (size_t i = 0; i < nulls.size(); i += 7) nulls[i] = 1;
  }
};

bool VerifyKernels(const CpuKernels& candidate, const CpuKernels& ref) {
  ProbeData probe;
  size_t n = probe.ints.size();
  // bit pack/unpack across every width and several start offsets.
  for (int bits = 1; bits <= 32; ++bits) {
    std::vector<uint32_t> codes(n);
    uint64_t mask = (1ULL << bits) - 1;
    for (size_t i = 0; i < n; ++i) {
      codes[i] = static_cast<uint32_t>(
          static_cast<uint64_t>(probe.ints[i]) & mask);
    }
    size_t num_words = (n * bits + 63) / 64 + 1;
    std::vector<uint64_t> a(num_words, 0), b(num_words, 0);
    candidate.bit_pack(a.data(), bits, 0, codes.data(), n);
    ref.bit_pack(b.data(), bits, 0, codes.data(), n);
    if (a != b) return false;
    for (size_t start : {size_t{0}, size_t{1}, size_t{5}, size_t{64}}) {
      if (start >= n) continue;
      std::vector<uint32_t> u1(n - start), u2(n - start);
      candidate.bit_unpack(a.data(), a.size(), bits, start, n - start,
                           u1.data());
      ref.bit_unpack(b.data(), b.size(), bits, start, n - start, u2.data());
      if (u1 != u2) return false;
    }
  }
  // Hash, with and without the boundary magnitudes.
  for (uint64_t seed : {uint64_t{0x12345}, uint64_t{0}, ~uint64_t{0}}) {
    std::vector<uint64_t> h1(n), h2(n);
    candidate.hash_i64(probe.ints.data(), n, seed, h1.data());
    ref.hash_i64(probe.ints.data(), n, seed, h2.data());
    if (h1 != h2) return false;
  }
  // Compares, with and without a null mask.
  for (int op = 0; op <= 5; ++op) {
    for (int64_t rhs : {int64_t{0}, int64_t{42}, INT64_MIN, INT64_MAX}) {
      std::vector<uint8_t> m1(n), m2(n);
      const uint8_t* masks[2] = {nullptr, probe.nulls.data()};
      for (const uint8_t* nulls : masks) {
        candidate.cmp_i64(static_cast<CmpOp>(op), probe.ints.data(), nulls, n,
                          rhs, m1.data());
        ref.cmp_i64(static_cast<CmpOp>(op), probe.ints.data(), nulls, n, rhs,
                    m2.data());
        if (m1 != m2) return false;
      }
    }
  }
  return true;
}

struct Binding {
  CpuKernels table;
  CpuLevel level;
};

const Binding& ScalarBinding() {
  static const Binding b = {
      {&ScalarBitUnpack, &ScalarBitPack, &ScalarHashI64, &ScalarCmpI64},
      CpuLevel::kScalar};
  return b;
}

Binding BuildNativeBinding() {
  Binding b = ScalarBinding();
  CpuLevel level = DetectedCpuLevel();
  b.table.bit_pack = &FastBitPack;
#if HANA_CPU_X86
  if (level >= CpuLevel::kAvx2) {
    b.table.bit_unpack = &Avx2BitUnpack;
    b.table.hash_i64 = &Avx2HashI64;
    b.table.cmp_i64 = &Avx2CmpI64;
  }
  if (level >= CpuLevel::kAvx512) {
    b.table.bit_unpack = &Avx512BitUnpack;
    b.table.cmp_i64 = &Avx512CmpI64;
  }
#endif
  b.level = level;
  // Belt and braces for the bit-identity guarantee: any kernel family
  // that disagrees with the reference on the probe set is demoted (the
  // AVX2 hash, for example, assumes libstdc++'s identity
  // std::hash<int64_t>; on a library where that does not hold the
  // verification fails and the scalar hash stays bound).
  if (!VerifyKernels(b.table, ScalarBinding().table)) {
    Binding s = ScalarBinding();
    s.table.bit_pack = &FastBitPack;  // Portable, verified below.
    if (!VerifyKernels(s.table, ScalarBinding().table)) {
      return ScalarBinding();
    }
    return s;
  }
  return b;
}

const Binding& NativeBinding() {
  static const Binding b = BuildNativeBinding();
  return b;
}

// atomic: the active table pointer is rebound by SetCpuMode while scan
// workers read it; release/acquire publishes the immutable Binding.
std::atomic<const Binding*>& ActiveSlot() {
  static std::atomic<const Binding*> slot{[] {
    const char* env = std::getenv("HANA_CPU");
    if (env != nullptr && std::strcmp(env, "scalar") == 0) {
      return &ScalarBinding();
    }
    return &NativeBinding();
  }()};
  return slot;
}

}  // namespace

const char* CpuLevelName(CpuLevel level) {
  switch (level) {
    case CpuLevel::kScalar: return "scalar";
    case CpuLevel::kSse42: return "sse4.2";
    case CpuLevel::kAvx2: return "avx2";
    case CpuLevel::kAvx512: return "avx512";
  }
  return "unknown";
}

CpuLevel DetectedCpuLevel() {
  static const CpuLevel level = ProbeCpu();
  return level;
}

CpuLevel ActiveCpuLevel() {
  return ActiveSlot().load(std::memory_order_acquire)->level;
}

const CpuKernels& Kernels() {
  return ActiveSlot().load(std::memory_order_acquire)->table;
}

const CpuKernels& ScalarKernels() { return ScalarBinding().table; }

Status SetCpuMode(const std::string& mode) {
  if (mode == "scalar") {
    ActiveSlot().store(&ScalarBinding(), std::memory_order_release);
    return Status::OK();
  }
  if (mode == "native") {
    ActiveSlot().store(&NativeBinding(), std::memory_order_release);
    return Status::OK();
  }
  return Status::InvalidArgument("cpu mode must be native or scalar: " + mode);
}

std::string CpuModeString() {
  return ActiveSlot().load(std::memory_order_acquire) == &ScalarBinding()
             ? "scalar"
             : "native";
}

}  // namespace hana
