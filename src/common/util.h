#ifndef HANA_COMMON_UTIL_H_
#define HANA_COMMON_UTIL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace hana {

/// Deterministic 64-bit PRNG (SplitMix64). All synthetic data in the
/// repository is generated from explicitly seeded instances so results
/// are reproducible across runs and machines.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [lo, hi] inclusive.
  int64_t Uniform(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Next() % static_cast<uint64_t>(hi - lo + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  uint64_t state_;
};

/// FNV-1a 64-bit hash; used for remote-cache keys and HDFS block checksums.
uint64_t Fnv1a64(const void* data, size_t size);
uint64_t Fnv1a64(const std::string& s);

/// Combines two hash values (boost-style).
inline size_t HashCombine(size_t seed, size_t v) {
  return seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// Wall-clock stopwatch for benchmark measurements.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  void Reset() { start_ = std::chrono::steady_clock::now(); }
  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Virtual clock for the simulated distributed substrate. Engines that
/// model remote infrastructure (Hadoop cluster, ODBC link, disk arrays)
/// advance this clock according to their cost models instead of sleeping;
/// query metrics then report real local time + virtual remote time.
/// Advances are atomic: concurrently dispatched federation branches
/// (Union Plan) charge the same clock from pool workers. Negative
/// advances are allowed — the SDA runtime refunds time after a
/// concurrent dispatch region so branches cost max instead of sum.
class SimClock {
 public:
  SimClock() = default;

  double now_ms() const { return now_ms_.load(std::memory_order_relaxed); }
  void Advance(double ms) {
    now_ms_.fetch_add(ms, std::memory_order_relaxed);
  }
  void Reset() { now_ms_.store(0.0, std::memory_order_relaxed); }

 private:
  // atomic: relaxed simulated-time cell; readers tolerate racing an
  // in-flight Advance, and no other state is published through it.
  std::atomic<double> now_ms_{0.0};
};

/// Severity-filtered logging to stderr. Defaults to kWarn so tests and
/// benchmarks stay quiet; examples raise it to kInfo.
enum class LogLevel { kDebug = 0, kInfo, kWarn, kError };

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();
void LogMessage(LogLevel level, const std::string& msg);

#define HANA_LOG(level, msg)                                      \
  do {                                                            \
    if (static_cast<int>(level) >=                                \
        static_cast<int>(::hana::GetLogLevel())) {                \
      ::hana::LogMessage(level, (msg));                           \
    }                                                             \
  } while (0)

}  // namespace hana

#endif  // HANA_COMMON_UTIL_H_
