#include "common/strings.h"

#include <cctype>
#include <cstdio>

namespace hana {

std::string ToUpper(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::string ToLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string Trim(const std::string& s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) --end;
  return s.substr(begin, end - begin);
}

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      parts.push_back(s.substr(start));
      break;
    }
    parts.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

bool EqualsIgnoreCase(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(a[i])) !=
        std::toupper(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool LikeMatch(const std::string& text, const std::string& pattern) {
  // Iterative matcher with backtracking over the last '%'.
  size_t t = 0, p = 0;
  size_t star_p = std::string::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

}  // namespace hana
