#ifndef HANA_COMMON_STATUS_H_
#define HANA_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace hana {

/// Error categories used across the platform. Modeled after the
/// Status idiom used by RocksDB/Arrow: no exceptions cross API
/// boundaries; every fallible operation returns a Status or Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kIoError,
  kParseError,
  kBindError,
  kTransactionAborted,
  kUnavailable,
  kCapabilityError,
};

/// Lightweight success/error carrier. Cheap to copy when OK (no
/// allocation); error states carry a code and a human-readable message.
/// The class-level [[nodiscard]] makes the compiler flag every call
/// site that drops a returned Status on the floor; intentional drops
/// must say so via IgnoreStatus().
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status BindError(std::string msg) {
    return Status(StatusCode::kBindError, std::move(msg));
  }
  static Status TransactionAborted(std::string msg) {
    return Status(StatusCode::kTransactionAborted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status CapabilityError(std::string msg) {
    return Status(StatusCode::kCapabilityError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code>: <message>" for diagnostics.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Returns the canonical name of a status code ("InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// Explicitly discards a Status (or Result<T>). Every intentional drop
/// of a fallible call's outcome must go through this helper with a
/// comment stating why ignoring is safe — a bare discarded call no
/// longer compiles once [[nodiscard]] is enforced.
template <typename T>
inline void IgnoreStatus(T&&) {}

}  // namespace hana

/// Propagates a non-OK Status from the enclosing function.
#define HANA_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::hana::Status _hana_status = (expr);         \
    if (!_hana_status.ok()) return _hana_status;  \
  } while (0)

#define HANA_CONCAT_IMPL_(a, b) a##b
#define HANA_CONCAT_(a, b) HANA_CONCAT_IMPL_(a, b)

/// Evaluates a Result<T>-returning expression; on success binds the value
/// to `lhs`, otherwise returns the error Status.
#define HANA_ASSIGN_OR_RETURN(lhs, expr)                          \
  auto HANA_CONCAT_(_hana_res_, __LINE__) = (expr);               \
  if (!HANA_CONCAT_(_hana_res_, __LINE__).ok())                   \
    return HANA_CONCAT_(_hana_res_, __LINE__).status();           \
  lhs = std::move(HANA_CONCAT_(_hana_res_, __LINE__)).ValueUnsafe()

#endif  // HANA_COMMON_STATUS_H_
