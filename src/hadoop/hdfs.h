#ifndef HANA_HADOOP_HDFS_H_
#define HANA_HADOOP_HDFS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"

namespace hana::hadoop {

/// Namespace + block-placement simulator of the Hadoop Distributed File
/// System. Files are line-oriented (Hive text format). Block contents
/// live in memory; sizes, replication and per-datanode placement are
/// tracked faithfully so the MapReduce cost model can reason about
/// locality, task counts and cluster capacity.
struct HdfsOptions {
  size_t block_size_bytes = 4 << 20;  // Scaled-down 64MB default.
  int replication = 3;
  int num_datanodes = 6;
  uint64_t capacity_bytes = 21'500ULL << 20;  // Paper: 21.5TB, scaled /1000.
};

struct HdfsBlock {
  uint64_t id = 0;
  std::vector<std::string> lines;
  size_t bytes = 0;
  std::vector<int> datanodes;  // Replica placements.
};

struct HdfsFileInfo {
  std::string path;
  size_t bytes = 0;
  size_t num_blocks = 0;
  size_t num_lines = 0;
};

class Hdfs {
 public:
  explicit Hdfs(HdfsOptions options = {});

  /// Creates (or replaces) a file from lines.
  [[nodiscard]] Status WriteFile(const std::string& path,
                   const std::vector<std::string>& lines);
  [[nodiscard]] Status AppendLines(const std::string& path,
                     const std::vector<std::string>& lines);
  [[nodiscard]] Result<std::vector<std::string>> ReadFile(const std::string& path) const;
  bool Exists(const std::string& path) const;
  [[nodiscard]] Status Delete(const std::string& path);
  [[nodiscard]] Status Rename(const std::string& from, const std::string& to);
  std::vector<std::string> List(const std::string& prefix) const;
  [[nodiscard]] Result<HdfsFileInfo> Stat(const std::string& path) const;

  /// The blocks of a file (the MapReduce engine schedules one map task
  /// per block).
  [[nodiscard]] Result<std::vector<const HdfsBlock*>> Blocks(const std::string& path) const;

  uint64_t used_bytes() const { return used_bytes_; }
  uint64_t capacity_bytes() const { return options_.capacity_bytes; }
  const HdfsOptions& options() const { return options_; }
  /// Raw (pre-replication) bytes per datanode.
  std::vector<uint64_t> DatanodeUsage() const;

 private:
  struct File {
    std::vector<HdfsBlock> blocks;
    size_t bytes = 0;
    size_t lines = 0;
  };

  void PlaceBlock(HdfsBlock* block);

  HdfsOptions options_;
  std::map<std::string, File> files_;
  uint64_t next_block_id_ = 1;
  uint64_t used_bytes_ = 0;
  int next_datanode_ = 0;
};

}  // namespace hana::hadoop

#endif  // HANA_HADOOP_HDFS_H_
