#ifndef HANA_HADOOP_SERDE_H_
#define HANA_HADOOP_SERDE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/schema.h"
#include "common/value.h"

namespace hana::hadoop {

/// Hive-text-format style row serialization: tab-separated fields,
/// "\N" for NULL, backslash escaping for tab/newline/backslash.
std::string SerializeRow(const std::vector<Value>& row);

/// Parses a serialized line back into typed values per `schema`.
[[nodiscard]] Result<std::vector<Value>> ParseRow(const std::string& line,
                                    const Schema& schema);

/// Serializes a single value (dates as day numbers, doubles with full
/// precision so round-trips are exact).
std::string SerializeValue(const Value& v);

[[nodiscard]] Result<Value> ParseValue(const std::string& field, DataType type);

}  // namespace hana::hadoop

#endif  // HANA_HADOOP_SERDE_H_
