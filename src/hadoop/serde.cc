#include "hadoop/serde.h"

#include <cstdio>
#include <cstdlib>

namespace hana::hadoop {

namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '\t':
        *out += "\\t";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\\':
        *out += "\\\\";
        break;
      default:
        *out += c;
    }
  }
}

std::string Unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      char next = s[++i];
      out += next == 't' ? '\t' : next == 'n' ? '\n' : next;
    } else {
      out += s[i];
    }
  }
  return out;
}

}  // namespace

std::string SerializeValue(const Value& v) {
  if (v.is_null()) return "\\N";
  switch (v.type()) {
    case DataType::kBool:
      return v.bool_value() ? "1" : "0";
    case DataType::kInt64:
    case DataType::kDate:
    case DataType::kTimestamp:
      return std::to_string(v.int_value());
    case DataType::kDouble: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", v.double_value());
      return buf;
    }
    case DataType::kString: {
      std::string out;
      AppendEscaped(&out, v.string_value());
      return out;
    }
    default:
      return "\\N";
  }
}

std::string SerializeRow(const std::vector<Value>& row) {
  std::string out;
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += '\t';
    out += SerializeValue(row[i]);
  }
  return out;
}

Result<Value> ParseValue(const std::string& field, DataType type) {
  if (field == "\\N") return Value::Null();
  switch (type) {
    case DataType::kBool:
      return Value::Bool(field != "0" && field != "false");
    case DataType::kInt64:
      return Value::Int(std::strtoll(field.c_str(), nullptr, 10));
    case DataType::kDate:
      return Value::Date(std::strtoll(field.c_str(), nullptr, 10));
    case DataType::kTimestamp:
      return Value::Timestamp(std::strtoll(field.c_str(), nullptr, 10));
    case DataType::kDouble:
      return Value::Double(std::strtod(field.c_str(), nullptr));
    case DataType::kString:
      return Value::String(Unescape(field));
    default:
      return Value::Null();
  }
}

Result<std::vector<Value>> ParseRow(const std::string& line,
                                    const Schema& schema) {
  std::vector<Value> row;
  row.reserve(schema.num_columns());
  size_t start = 0;
  size_t col = 0;
  for (size_t i = 0; i <= line.size(); ++i) {
    // Escaping rewrites real tabs as the two characters '\' 't', so any
    // actual tab character is a field separator.
    bool at_sep = i == line.size() || line[i] == '\t';
    if (!at_sep) continue;
    if (col >= schema.num_columns()) {
      return Status::IoError("too many fields in line: " + line);
    }
    HANA_ASSIGN_OR_RETURN(
        Value v, ParseValue(line.substr(start, i - start),
                            schema.column(col).type));
    row.push_back(std::move(v));
    ++col;
    start = i + 1;
  }
  if (col != schema.num_columns()) {
    return Status::IoError("too few fields in line: " + line);
  }
  return row;
}

}  // namespace hana::hadoop
