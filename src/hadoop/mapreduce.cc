#include "hadoop/mapreduce.h"

#include <algorithm>

namespace hana::hadoop {

double MapReduceEngine::TaskWaveMs(size_t tasks, int slots,
                                   uint64_t total_bytes, double mbps) const {
  if (tasks == 0) return 0.0;
  size_t waves = (tasks + static_cast<size_t>(slots) - 1) /
                 static_cast<size_t>(slots);
  double bytes_per_task =
      static_cast<double>(total_bytes) / static_cast<double>(tasks);
  double task_ms = config_.task_startup_ms +
                   bytes_per_task / (mbps * 1048.576);
  return static_cast<double>(waves) * task_ms;
}

Result<JobStats> MapReduceEngine::RunJob(const JobSpec& spec) {
  JobStats stats;
  stats.name = spec.name;
  stats.simulated_ms += config_.job_startup_ms;

  // ---- Map phase: one task per block, executed for real. -------------
  std::vector<KeyValue> emitted;
  for (size_t i = 0; i < spec.inputs.size(); ++i) {
    HANA_ASSIGN_OR_RETURN(std::vector<const HdfsBlock*> blocks,
                          hdfs_->Blocks(spec.inputs[i]));
    for (const HdfsBlock* block : blocks) {
      ++stats.map_tasks;
      stats.input_bytes += block->bytes;
      for (const std::string& line : block->lines) {
        spec.mapper(static_cast<int>(i), line, &emitted);
      }
    }
  }
  stats.simulated_ms += TaskWaveMs(stats.map_tasks, config_.map_slots,
                                   stats.input_bytes, config_.map_mbps);

  std::vector<std::string> output_lines;
  if (spec.reducer == nullptr) {
    // Map-only job: values are output lines; keys ignored.
    output_lines.reserve(emitted.size());
    for (auto& [key, value] : emitted) output_lines.push_back(std::move(value));
  } else {
    // ---- Shuffle: group by key (sorted when requested). --------------
    for (const auto& [key, value] : emitted) {
      stats.shuffle_bytes += key.size() + value.size();
    }
    stats.simulated_ms +=
        static_cast<double>(stats.shuffle_bytes) /
        (config_.shuffle_mbps * 1048.576);

    std::map<std::string, std::vector<std::string>> groups;
    for (auto& [key, value] : emitted) {
      groups[key].push_back(std::move(value));
    }

    // ---- Reduce phase. -----------------------------------------------
    size_t reducers = spec.num_reducers > 0
                          ? static_cast<size_t>(spec.num_reducers)
                          : std::min<size_t>(
                                groups.empty() ? 1 : groups.size(),
                                static_cast<size_t>(config_.reduce_slots));
    if (spec.sort_keys) reducers = 1;  // Total order needs one reducer.
    stats.reduce_tasks = reducers;
    for (auto& [key, values] : groups) {
      spec.reducer(key, values, &output_lines);
    }
    stats.simulated_ms += TaskWaveMs(reducers, config_.reduce_slots,
                                     stats.shuffle_bytes,
                                     config_.reduce_mbps);
  }

  for (const std::string& line : output_lines) {
    stats.output_bytes += line.size() + 1;
  }
  stats.simulated_ms += static_cast<double>(stats.output_bytes) /
                        (config_.hdfs_write_mbps * 1048.576);
  HANA_RETURN_IF_ERROR(hdfs_->WriteFile(spec.output, output_lines));

  clock_->Advance(stats.simulated_ms);
  history_.push_back(stats);
  return stats;
}

}  // namespace hana::hadoop
