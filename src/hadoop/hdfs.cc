#include "hadoop/hdfs.h"

namespace hana::hadoop {

Hdfs::Hdfs(HdfsOptions options) : options_(options) {}

void Hdfs::PlaceBlock(HdfsBlock* block) {
  block->id = next_block_id_++;
  for (int r = 0; r < options_.replication; ++r) {
    block->datanodes.push_back((next_datanode_ + r) % options_.num_datanodes);
  }
  next_datanode_ = (next_datanode_ + 1) % options_.num_datanodes;
}

Status Hdfs::WriteFile(const std::string& path,
                       const std::vector<std::string>& lines) {
  if (Exists(path)) HANA_RETURN_IF_ERROR(Delete(path));
  return AppendLines(path, lines);
}

Status Hdfs::AppendLines(const std::string& path,
                         const std::vector<std::string>& lines) {
  File& file = files_[path];
  if (file.blocks.empty()) {
    file.blocks.emplace_back();
    PlaceBlock(&file.blocks.back());
  }
  for (const std::string& line : lines) {
    HdfsBlock* block = &file.blocks.back();
    if (block->bytes + line.size() + 1 > options_.block_size_bytes &&
        block->bytes > 0) {
      file.blocks.emplace_back();
      PlaceBlock(&file.blocks.back());
      block = &file.blocks.back();
    }
    size_t replicated =
        (line.size() + 1) * static_cast<size_t>(options_.replication);
    if (used_bytes_ + replicated > options_.capacity_bytes) {
      return Status::IoError("HDFS capacity exhausted");
    }
    block->lines.push_back(line);
    block->bytes += line.size() + 1;
    file.bytes += line.size() + 1;
    ++file.lines;
    used_bytes_ += replicated;
  }
  return Status::OK();
}

Result<std::vector<std::string>> Hdfs::ReadFile(
    const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  std::vector<std::string> lines;
  lines.reserve(it->second.lines);
  for (const HdfsBlock& block : it->second.blocks) {
    lines.insert(lines.end(), block.lines.begin(), block.lines.end());
  }
  return lines;
}

bool Hdfs::Exists(const std::string& path) const {
  return files_.count(path) > 0;
}

Status Hdfs::Delete(const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  used_bytes_ -=
      it->second.bytes * static_cast<uint64_t>(options_.replication);
  files_.erase(it);
  return Status::OK();
}

Status Hdfs::Rename(const std::string& from, const std::string& to) {
  auto it = files_.find(from);
  if (it == files_.end()) return Status::NotFound("no such file: " + from);
  if (Exists(to)) HANA_RETURN_IF_ERROR(Delete(to));
  files_[to] = std::move(it->second);
  files_.erase(from);
  return Status::OK();
}

std::vector<std::string> Hdfs::List(const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& [path, file] : files_) {
    if (path.rfind(prefix, 0) == 0) out.push_back(path);
  }
  return out;
}

Result<HdfsFileInfo> Hdfs::Stat(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  return HdfsFileInfo{path, it->second.bytes, it->second.blocks.size(),
                      it->second.lines};
}

Result<std::vector<const HdfsBlock*>> Hdfs::Blocks(
    const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  std::vector<const HdfsBlock*> blocks;
  for (const HdfsBlock& block : it->second.blocks) blocks.push_back(&block);
  return blocks;
}

std::vector<uint64_t> Hdfs::DatanodeUsage() const {
  std::vector<uint64_t> usage(static_cast<size_t>(options_.num_datanodes), 0);
  for (const auto& [path, file] : files_) {
    for (const HdfsBlock& block : file.blocks) {
      for (int dn : block.datanodes) {
        usage[static_cast<size_t>(dn)] += block.bytes;
      }
    }
  }
  return usage;
}

}  // namespace hana::hadoop
