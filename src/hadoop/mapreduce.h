#ifndef HANA_HADOOP_MAPREDUCE_H_
#define HANA_HADOOP_MAPREDUCE_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/util.h"
#include "hadoop/hdfs.h"

namespace hana::hadoop {

/// Cluster sizing and latency model. Defaults follow the paper's
/// evaluation cluster: Apache Hadoop 1.0.3, 6 worker nodes, 240 map
/// tasks, 120 reduce tasks. Job/task startup costs dominate short jobs —
/// exactly the effect remote materialization eliminates.
struct ClusterConfig {
  int worker_nodes = 6;
  int map_slots = 240;
  int reduce_slots = 120;
  double job_startup_ms = 400.0;   // JobTracker submission + scheduling.
  double task_startup_ms = 120.0;  // JVM spin-up per task wave.
  double map_mbps = 40.0;          // Per-task scan+map throughput.
  double shuffle_mbps = 80.0;      // Cluster-wide shuffle bandwidth.
  double reduce_mbps = 40.0;       // Per-task reduce throughput.
  double hdfs_write_mbps = 60.0;   // Output materialization bandwidth.
};

/// Key-value pair flowing between map and reduce.
using KeyValue = std::pair<std::string, std::string>;

/// Mapper: one input line (plus the index of the input it came from,
/// for multi-input joins) to zero or more key-value pairs.
using Mapper =
    std::function<void(int input_index, const std::string& line,
                       std::vector<KeyValue>* out)>;

/// Reducer: one key with all its values to zero or more output lines.
using Reducer = std::function<void(const std::string& key,
                                   const std::vector<std::string>& values,
                                   std::vector<std::string>* out)>;

struct JobSpec {
  std::string name;
  std::vector<std::string> inputs;  // HDFS paths.
  std::string output;               // HDFS path (replaced).
  Mapper mapper;                    // Required.
  Reducer reducer;                  // Null = map-only job.
  int num_reducers = 0;             // 0 with a reducer = config default.
  bool sort_keys = false;           // Order-by jobs sort reducer keys.
};

struct JobStats {
  std::string name;
  size_t map_tasks = 0;
  size_t reduce_tasks = 0;
  uint64_t input_bytes = 0;
  uint64_t shuffle_bytes = 0;
  uint64_t output_bytes = 0;
  double simulated_ms = 0.0;
};

/// Executes MapReduce jobs over HDFS data: the real dataflow (map,
/// shuffle/sort, reduce) runs in-process over the actual lines while a
/// deterministic cost model charges virtual cluster time to the shared
/// SimClock. One map task is scheduled per input block; tasks run in
/// waves limited by the configured slots.
class MapReduceEngine {
 public:
  MapReduceEngine(Hdfs* hdfs, ClusterConfig config, SimClock* clock)
      : hdfs_(hdfs), config_(config), clock_(clock) {}

  [[nodiscard]] Result<JobStats> RunJob(const JobSpec& spec);

  /// Charges non-job cluster time (metadata round-trips, CTAS rewrite
  /// passes) to the shared virtual clock.
  void ChargeClusterTime(double ms) { clock_->Advance(ms); }

  const ClusterConfig& config() const { return config_; }
  const std::vector<JobStats>& history() const { return history_; }
  uint64_t jobs_run() const { return history_.size(); }

 private:
  double TaskWaveMs(size_t tasks, int slots, uint64_t total_bytes,
                    double mbps) const;

  Hdfs* hdfs_;
  ClusterConfig config_;
  SimClock* clock_;
  std::vector<JobStats> history_;
};

}  // namespace hana::hadoop

#endif  // HANA_HADOOP_MAPREDUCE_H_
