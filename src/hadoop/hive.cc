#include "hadoop/hive.h"

#include <algorithm>
#include <unordered_set>

#include "common/strings.h"
#include "exec/evaluator.h"
#include "hadoop/serde.h"
#include "plan/binder.h"
#include "plan/join_analysis.h"
#include "plan/rewrites.h"
#include "sql/parser.h"
#include "storage/column_table.h"

namespace hana::hadoop {

namespace {

using plan::BoundExpr;
using plan::JoinKind;
using plan::LogicalKind;
using plan::LogicalOp;

/// Reduce-side aggregation state (Hive's own implementation; mirrors the
/// HANA engine's semantics).
struct AggState {
  int64_t count = 0;
  double sum_d = 0.0;
  int64_t sum_i = 0;
  bool any = false;
  Value min_v;
  Value max_v;
  std::unordered_set<Value, storage::ValueHash> distinct;
};

Status UpdateAgg(const BoundExpr& agg, const std::vector<Value>& row,
                 AggState* st) {
  if (agg.agg_kind == plan::AggKind::kCountStar) {
    ++st->count;
    return Status::OK();
  }
  HANA_ASSIGN_OR_RETURN(Value v, exec::EvalExprRow(*agg.child0, row));
  if (v.is_null()) return Status::OK();
  if (agg.distinct && !st->distinct.insert(v).second) return Status::OK();
  st->any = true;
  switch (agg.agg_kind) {
    case plan::AggKind::kCount:
      ++st->count;
      break;
    case plan::AggKind::kSum:
    case plan::AggKind::kAvg:
      ++st->count;
      st->sum_d += v.AsDouble();
      st->sum_i += v.AsInt();
      break;
    case plan::AggKind::kMin:
      if (st->min_v.is_null() || v.Compare(st->min_v) < 0) st->min_v = v;
      break;
    case plan::AggKind::kMax:
      if (st->max_v.is_null() || v.Compare(st->max_v) > 0) st->max_v = v;
      break;
    default:
      break;
  }
  return Status::OK();
}

/// MetaStore round-trip cost for each CTAS phase.
constexpr double kCtasMetadataMs = 120.0;

Value FinalizeAgg(const BoundExpr& agg, const AggState& st) {
  switch (agg.agg_kind) {
    case plan::AggKind::kCountStar:
    case plan::AggKind::kCount:
      return Value::Int(st.count);
    case plan::AggKind::kSum:
      if (!st.any) return Value::Null();
      return agg.type == DataType::kDouble ? Value::Double(st.sum_d)
                                           : Value::Int(st.sum_i);
    case plan::AggKind::kAvg:
      if (!st.any || st.count == 0) return Value::Null();
      return Value::Double(st.sum_d / static_cast<double>(st.count));
    case plan::AggKind::kMin:
      return st.min_v;
    case plan::AggKind::kMax:
      return st.max_v;
  }
  return Value::Null();
}

}  // namespace

// ---------------------------------------------------------------------
// MetaStore
// ---------------------------------------------------------------------

Status HiveEngine::CreateTable(const std::string& name,
                               std::shared_ptr<Schema> schema,
                               bool temporary) {
  std::string key = ToUpper(name);
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("hive table exists: " + name);
  }
  HiveTable table;
  table.name = name;
  table.schema = std::move(schema);
  table.path = std::string(temporary ? "/tmp/warehouse/" : "/warehouse/") +
               ToLower(name);
  table.temporary = temporary;
  HANA_RETURN_IF_ERROR(hdfs_->WriteFile(table.path, {}));
  tables_[key] = std::move(table);
  return Status::OK();
}

Status HiveEngine::LoadRows(const std::string& name,
                            const std::vector<std::vector<Value>>& rows) {
  HANA_ASSIGN_OR_RETURN(const HiveTable* table, GetTable(name));
  std::vector<std::string> lines;
  lines.reserve(rows.size());
  for (const auto& row : rows) {
    if (row.size() != table->schema->num_columns()) {
      return Status::InvalidArgument("row arity mismatch loading " + name);
    }
    lines.push_back(SerializeRow(row));
  }
  return hdfs_->AppendLines(table->path, lines);
}

Result<const HiveTable*> HiveEngine::GetTable(const std::string& name) const {
  auto it = tables_.find(ToUpper(name));
  if (it == tables_.end()) {
    return Status::NotFound("hive table not found: " + name);
  }
  return &it->second;
}

Status HiveEngine::DropTable(const std::string& name) {
  auto it = tables_.find(ToUpper(name));
  if (it == tables_.end()) {
    return Status::NotFound("hive table not found: " + name);
  }
  if (hdfs_->Exists(it->second.path)) {
    HANA_RETURN_IF_ERROR(hdfs_->Delete(it->second.path));
  }
  tables_.erase(it);
  return Status::OK();
}

Result<HiveTableStats> HiveEngine::Stats(const std::string& name) const {
  HANA_ASSIGN_OR_RETURN(const HiveTable* table, GetTable(name));
  HiveTableStats stats;
  stats.file_count = 1;
  HANA_ASSIGN_OR_RETURN(HdfsFileInfo info, hdfs_->Stat(table->path));
  stats.row_count = info.num_lines;
  stats.num_blocks = info.num_blocks;
  stats.total_bytes = info.bytes;
  return stats;
}

std::vector<std::string> HiveEngine::TableNames() const {
  std::vector<std::string> names;
  for (const auto& [key, table] : tables_) names.push_back(table.name);
  return names;
}

Result<plan::TableBinding> HiveEngine::ResolveTable(
    const std::string& name) const {
  // Virtual-table paths arrive as "db.table" or plain names; Hive
  // resolves on the last component.
  std::string base = name;
  auto pos = base.rfind('.');
  if (pos != std::string::npos) base = base.substr(pos + 1);
  HANA_ASSIGN_OR_RETURN(const HiveTable* table, GetTable(base));
  plan::TableBinding binding;
  binding.name = table->name;
  binding.location = plan::TableLocation::kLocalColumn;
  binding.schema = table->schema;
  Result<HiveTableStats> stats = Stats(base);
  binding.estimated_rows =
      stats.ok() ? static_cast<double>(stats->row_count) : -1;
  return binding;
}

Result<plan::TableFunctionBinding> HiveEngine::ResolveTableFunction(
    const std::string& name) const {
  return Status::NotFound("hive has no table function " + name);
}

// ---------------------------------------------------------------------
// Compiler: logical plan -> DAG of MapReduce jobs
// ---------------------------------------------------------------------

std::string HiveEngine::TempPath(size_t query_id, size_t job) const {
  return StrFormat("/tmp/hive-query-%zu/stage-%zu", query_id, job);
}

Result<HiveEngine::Dataset> HiveEngine::CompileNode(const LogicalOp& op,
                                                    size_t* job_counter,
                                                    size_t query_id) {
  switch (op.kind) {
    case LogicalKind::kScan: {
      HANA_ASSIGN_OR_RETURN(const HiveTable* table, GetTable(op.table.name));
      return Dataset{table->path, op.schema};
    }

    case LogicalKind::kFilter:
    case LogicalKind::kProject: {
      // Fuse a filter/project pipeline into one map-only job.
      std::vector<const LogicalOp*> pipeline;
      const LogicalOp* base = &op;
      while (base->kind == LogicalKind::kFilter ||
             base->kind == LogicalKind::kProject) {
        pipeline.push_back(base);
        base = base->children[0].get();
      }
      HANA_ASSIGN_OR_RETURN(Dataset input,
                            CompileNode(*base, job_counter, query_id));
      std::reverse(pipeline.begin(), pipeline.end());  // Bottom-up order.

      auto error = std::make_shared<Status>();
      JobSpec spec;
      spec.name = StrFormat("q%zu-select-stage", query_id);
      spec.inputs = {input.path};
      spec.output = TempPath(query_id, (*job_counter)++);
      std::shared_ptr<Schema> in_schema = input.schema;
      spec.mapper = [pipeline, in_schema, error](int, const std::string& line,
                                                 std::vector<KeyValue>* out) {
        if (!error->ok()) return;
        Result<std::vector<Value>> parsed = ParseRow(line, *in_schema);
        if (!parsed.ok()) {
          *error = parsed.status();
          return;
        }
        std::vector<Value> row = std::move(*parsed);
        for (const LogicalOp* stage : pipeline) {
          if (stage->kind == LogicalKind::kFilter) {
            Result<Value> keep = exec::EvalExprRow(*stage->predicate, row);
            if (!keep.ok()) {
              *error = keep.status();
              return;
            }
            if (keep->is_null() || !exec::IsTruthy(*keep)) return;
          } else {
            std::vector<Value> next;
            next.reserve(stage->exprs.size());
            for (const auto& e : stage->exprs) {
              Result<Value> v = exec::EvalExprRow(*e, row);
              if (!v.ok()) {
                *error = v.status();
                return;
              }
              next.push_back(std::move(*v));
            }
            row = std::move(next);
          }
        }
        out->emplace_back("", SerializeRow(row));
      };
      HANA_RETURN_IF_ERROR(mapreduce_->RunJob(spec).status());
      HANA_RETURN_IF_ERROR(*error);
      return Dataset{spec.output, op.schema};
    }

    case LogicalKind::kJoin: {
      HANA_ASSIGN_OR_RETURN(Dataset left,
                            CompileNode(*op.children[0], job_counter,
                                        query_id));
      HANA_ASSIGN_OR_RETURN(Dataset right,
                            CompileNode(*op.children[1], job_counter,
                                        query_id));
      size_t left_arity = left.schema->num_columns();
      plan::JoinConditionParts parts;
      if (op.condition != nullptr) {
        parts = plan::AnalyzeJoinCondition(*op.condition, left_arity);
      }
      auto shared_parts =
          std::make_shared<plan::JoinConditionParts>(std::move(parts));
      auto error = std::make_shared<Status>();
      size_t right_arity = right.schema->num_columns();
      JoinKind kind = op.join_kind;

      JobSpec spec;
      spec.name = StrFormat("q%zu-join-stage", query_id);
      spec.inputs = {left.path, right.path};
      spec.output = TempPath(query_id, (*job_counter)++);
      std::shared_ptr<Schema> lschema = left.schema;
      std::shared_ptr<Schema> rschema = right.schema;
      spec.mapper = [shared_parts, lschema, rschema, error](
                        int input, const std::string& line,
                        std::vector<KeyValue>* out) {
        if (!error->ok()) return;
        const Schema& schema = input == 0 ? *lschema : *rschema;
        Result<std::vector<Value>> parsed = ParseRow(line, schema);
        if (!parsed.ok()) {
          *error = parsed.status();
          return;
        }
        std::vector<Value> key_values;
        for (const auto& ek : shared_parts->equi_keys) {
          const BoundExpr& expr = input == 0 ? *ek.left : *ek.right;
          Result<Value> v = exec::EvalExprRow(expr, *parsed);
          if (!v.ok()) {
            *error = v.status();
            return;
          }
          if (v->is_null()) return;  // Null keys never join.
          key_values.push_back(std::move(*v));
        }
        out->emplace_back(SerializeRow(key_values),
                          std::string(input == 0 ? "L" : "R") + line);
      };
      spec.reducer = [shared_parts, lschema, rschema, error, kind,
                      right_arity](const std::string&,
                                   const std::vector<std::string>& values,
                                   std::vector<std::string>* out) {
        if (!error->ok()) return;
        std::vector<std::vector<Value>> lrows, rrows;
        for (const std::string& tagged : values) {
          const Schema& schema = tagged[0] == 'L' ? *lschema : *rschema;
          Result<std::vector<Value>> parsed =
              ParseRow(tagged.substr(1), schema);
          if (!parsed.ok()) {
            *error = parsed.status();
            return;
          }
          (tagged[0] == 'L' ? lrows : rrows).push_back(std::move(*parsed));
        }
        for (const auto& lrow : lrows) {
          bool matched = false;
          for (const auto& rrow : rrows) {
            std::vector<Value> combined = lrow;
            combined.insert(combined.end(), rrow.begin(), rrow.end());
            if (shared_parts->residual != nullptr) {
              Result<Value> keep =
                  exec::EvalExprRow(*shared_parts->residual, combined);
              if (!keep.ok()) {
                *error = keep.status();
                return;
              }
              if (keep->is_null() || !exec::IsTruthy(*keep)) continue;
            }
            matched = true;
            if (kind == JoinKind::kInner || kind == JoinKind::kLeft ||
                kind == JoinKind::kCross) {
              out->push_back(SerializeRow(combined));
            } else {
              break;
            }
          }
          if (kind == JoinKind::kSemi && matched) {
            out->push_back(SerializeRow(lrow));
          }
          if (kind == JoinKind::kAnti && !matched) {
            out->push_back(SerializeRow(lrow));
          }
          if (kind == JoinKind::kLeft && !matched) {
            std::vector<Value> combined = lrow;
            combined.resize(lrow.size() + right_arity, Value::Null());
            out->push_back(SerializeRow(combined));
          }
        }
      };
      HANA_RETURN_IF_ERROR(mapreduce_->RunJob(spec).status());
      HANA_RETURN_IF_ERROR(*error);

      // LEFT and ANTI joins must also surface left rows whose key never
      // appeared on the right: re-emit unmatched keys in a second pass.
      // The repartition reducer above only sees keys present on at least
      // one side, so for kLeft/kAnti we additionally process left rows
      // whose key group contained no right rows — which the reducer above
      // already handles (the group exists because the left row is in it).
      return Dataset{spec.output, op.schema};
    }

    case LogicalKind::kAggregate: {
      HANA_ASSIGN_OR_RETURN(Dataset input,
                            CompileNode(*op.children[0], job_counter,
                                        query_id));
      auto error = std::make_shared<Status>();
      const LogicalOp* agg_op = &op;
      JobSpec spec;
      spec.name = StrFormat("q%zu-groupby-stage", query_id);
      spec.inputs = {input.path};
      spec.output = TempPath(query_id, (*job_counter)++);
      std::shared_ptr<Schema> in_schema = input.schema;
      spec.mapper = [agg_op, in_schema, error](int, const std::string& line,
                                               std::vector<KeyValue>* out) {
        if (!error->ok()) return;
        Result<std::vector<Value>> parsed = ParseRow(line, *in_schema);
        if (!parsed.ok()) {
          *error = parsed.status();
          return;
        }
        std::vector<Value> key;
        for (const auto& g : agg_op->group_by) {
          Result<Value> v = exec::EvalExprRow(*g, *parsed);
          if (!v.ok()) {
            *error = v.status();
            return;
          }
          key.push_back(std::move(*v));
        }
        out->emplace_back(SerializeRow(key), line);
      };
      spec.reducer = [agg_op, in_schema, error](
                         const std::string&,
                         const std::vector<std::string>& values,
                         std::vector<std::string>* out) {
        if (!error->ok()) return;
        std::vector<AggState> states(agg_op->aggregates.size());
        std::vector<Value> group_values;
        bool first = true;
        for (const std::string& line : values) {
          Result<std::vector<Value>> parsed = ParseRow(line, *in_schema);
          if (!parsed.ok()) {
            *error = parsed.status();
            return;
          }
          if (first) {
            for (const auto& g : agg_op->group_by) {
              Result<Value> v = exec::EvalExprRow(*g, *parsed);
              if (!v.ok()) {
                *error = v.status();
                return;
              }
              group_values.push_back(std::move(*v));
            }
            first = false;
          }
          for (size_t a = 0; a < agg_op->aggregates.size(); ++a) {
            Status s = UpdateAgg(*agg_op->aggregates[a], *parsed, &states[a]);
            if (!s.ok()) {
              *error = s;
              return;
            }
          }
        }
        std::vector<Value> row = std::move(group_values);
        for (size_t a = 0; a < agg_op->aggregates.size(); ++a) {
          row.push_back(FinalizeAgg(*agg_op->aggregates[a], states[a]));
        }
        out->push_back(SerializeRow(row));
      };
      HANA_RETURN_IF_ERROR(mapreduce_->RunJob(spec).status());
      HANA_RETURN_IF_ERROR(*error);

      // Global aggregates over empty inputs still produce one row.
      if (op.group_by.empty()) {
        HANA_ASSIGN_OR_RETURN(HdfsFileInfo info, hdfs_->Stat(spec.output));
        if (info.num_lines == 0) {
          std::vector<Value> row;
          std::vector<AggState> states(op.aggregates.size());
          for (size_t a = 0; a < op.aggregates.size(); ++a) {
            row.push_back(FinalizeAgg(*op.aggregates[a], states[a]));
          }
          HANA_RETURN_IF_ERROR(
              hdfs_->WriteFile(spec.output, {SerializeRow(row)}));
        }
      }
      return Dataset{spec.output, op.schema};
    }

    case LogicalKind::kSort: {
      HANA_ASSIGN_OR_RETURN(Dataset input,
                            CompileNode(*op.children[0], job_counter,
                                        query_id));
      auto error = std::make_shared<Status>();
      const LogicalOp* sort_op = &op;
      JobSpec spec;
      spec.name = StrFormat("q%zu-orderby-stage", query_id);
      spec.inputs = {input.path};
      spec.output = TempPath(query_id, (*job_counter)++);
      spec.sort_keys = true;
      std::shared_ptr<Schema> in_schema = input.schema;
      spec.mapper = [](int, const std::string& line,
                       std::vector<KeyValue>* out) {
        out->emplace_back("", line);
      };
      spec.reducer = [sort_op, in_schema, error](
                         const std::string&,
                         const std::vector<std::string>& values,
                         std::vector<std::string>* out) {
        if (!error->ok()) return;
        std::vector<std::vector<Value>> rows;
        for (const std::string& line : values) {
          Result<std::vector<Value>> parsed = ParseRow(line, *in_schema);
          if (!parsed.ok()) {
            *error = parsed.status();
            return;
          }
          rows.push_back(std::move(*parsed));
        }
        std::vector<std::vector<Value>> keys(rows.size());
        for (size_t i = 0; i < rows.size(); ++i) {
          for (const auto& k : sort_op->sort_keys) {
            Result<Value> v = exec::EvalExprRow(*k.expr, rows[i]);
            if (!v.ok()) {
              *error = v.status();
              return;
            }
            keys[i].push_back(std::move(*v));
          }
        }
        std::vector<size_t> order(rows.size());
        for (size_t i = 0; i < order.size(); ++i) order[i] = i;
        std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
          for (size_t k = 0; k < sort_op->sort_keys.size(); ++k) {
            int cmp = keys[a][k].Compare(keys[b][k]);
            if (cmp != 0) {
              return sort_op->sort_keys[k].ascending ? cmp < 0 : cmp > 0;
            }
          }
          return false;
        });
        for (size_t i : order) out->push_back(SerializeRow(rows[i]));
      };
      HANA_RETURN_IF_ERROR(mapreduce_->RunJob(spec).status());
      HANA_RETURN_IF_ERROR(*error);
      return Dataset{spec.output, op.schema};
    }

    case LogicalKind::kLimit: {
      HANA_ASSIGN_OR_RETURN(Dataset input,
                            CompileNode(*op.children[0], job_counter,
                                        query_id));
      HANA_ASSIGN_OR_RETURN(std::vector<std::string> lines,
                            hdfs_->ReadFile(input.path));
      if (static_cast<int64_t>(lines.size()) > op.limit) {
        lines.resize(static_cast<size_t>(op.limit));
      }
      std::string out = TempPath(query_id, (*job_counter)++);
      HANA_RETURN_IF_ERROR(hdfs_->WriteFile(out, lines));
      return Dataset{out, op.schema};
    }

    case LogicalKind::kUnion: {
      JobSpec spec;
      spec.name = StrFormat("q%zu-union-stage", query_id);
      for (const auto& child : op.children) {
        HANA_ASSIGN_OR_RETURN(Dataset ds,
                              CompileNode(*child, job_counter, query_id));
        spec.inputs.push_back(ds.path);
      }
      spec.output = TempPath(query_id, (*job_counter)++);
      spec.mapper = [](int, const std::string& line,
                       std::vector<KeyValue>* out) {
        out->emplace_back("", line);
      };
      HANA_RETURN_IF_ERROR(mapreduce_->RunJob(spec).status());
      return Dataset{spec.output, op.schema};
    }

    default:
      return Status::Unimplemented(
          "operator not supported by the Hive compiler");
  }
}

Result<HiveResult> HiveEngine::ExecuteQuery(const std::string& sql) {
  size_t query_id = next_query_id_++;
  size_t jobs_before = mapreduce_->history().size();
  double ms_before = 0;
  for (const auto& job : mapreduce_->history()) ms_before += job.simulated_ms;

  HANA_ASSIGN_OR_RETURN(auto select, sql::ParseSelect(sql));
  HANA_ASSIGN_OR_RETURN(plan::LogicalOpPtr logical,
                        plan::BindSelectStatement(*this, *select));
  HANA_RETURN_IF_ERROR(plan::PushDownFilters(&logical));

  size_t job_counter = 0;
  HANA_ASSIGN_OR_RETURN(Dataset result,
                        CompileNode(*logical, &job_counter, query_id));

  HiveResult out;
  out.table = storage::Table(result.schema);
  HANA_ASSIGN_OR_RETURN(std::vector<std::string> lines,
                        hdfs_->ReadFile(result.path));
  for (const std::string& line : lines) {
    HANA_ASSIGN_OR_RETURN(std::vector<Value> row,
                          ParseRow(line, *result.schema));
    out.table.AppendRow(std::move(row));
  }
  out.num_jobs = mapreduce_->history().size() - jobs_before;
  double ms_after = 0;
  for (const auto& job : mapreduce_->history()) ms_after += job.simulated_ms;
  out.simulated_ms = ms_after - ms_before;
  return out;
}

Result<std::string> HiveEngine::CreateTableAsSelect(const std::string& name,
                                                    const std::string& sql) {
  // Phase 1 (schema): plan the query to derive the result schema and
  // register the table shell. A metadata round-trip is charged.
  HANA_ASSIGN_OR_RETURN(auto select, sql::ParseSelect(sql));
  HANA_ASSIGN_OR_RETURN(plan::LogicalOpPtr logical,
                        plan::BindSelectStatement(*this, *select));
  auto schema = std::make_shared<Schema>(logical->schema->columns());
  if (tables_.count(ToUpper(name)) > 0) {
    HANA_RETURN_IF_ERROR(DropTable(name));
  }
  HANA_RETURN_IF_ERROR(CreateTable(name, schema, /*temporary=*/true));
  mapreduce_->ChargeClusterTime(kCtasMetadataMs);  // Phase-1 round-trip.

  // Phase 2 (populate): execute the DAG and rewrite the result into the
  // target table location. The extra write pass is the CTAS overhead the
  // paper attributes to the current two-phase Hive implementation.
  HANA_ASSIGN_OR_RETURN(HiveResult result, ExecuteQuery(sql));
  HANA_ASSIGN_OR_RETURN(const HiveTable* table, GetTable(name));
  std::vector<std::string> lines;
  size_t bytes = 0;
  lines.reserve(result.table.num_rows());
  for (const auto& row : result.table.rows()) {
    lines.push_back(SerializeRow(row));
    bytes += lines.back().size() + 1;
  }
  HANA_RETURN_IF_ERROR(hdfs_->WriteFile(table->path, lines));
  mapreduce_->ChargeClusterTime(
      kCtasMetadataMs + static_cast<double>(bytes) /
                            (mapreduce_->config().hdfs_write_mbps * 1048.576));
  return table->name;
}

}  // namespace hana::hadoop
