#ifndef HANA_HADOOP_HIVE_H_
#define HANA_HADOOP_HIVE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "hadoop/hdfs.h"
#include "hadoop/mapreduce.h"
#include "plan/logical.h"
#include "storage/column_vector.h"

namespace hana::hadoop {

/// MetaStore entry for a Hive table.
struct HiveTable {
  std::string name;
  std::shared_ptr<Schema> schema;
  std::string path;  // HDFS warehouse location.
  bool temporary = false;
};

/// Statistics the SDA cost model pulls from the Hive MetaStore
/// (Section 4.2: "we rely on the statistics available in the Hive
/// MetaStore, e.g. the row count and number of files used for a table").
struct HiveTableStats {
  size_t row_count = 0;
  size_t file_count = 0;
  size_t num_blocks = 0;
  uint64_t total_bytes = 0;
};

/// Result of one HiveQL execution.
struct HiveResult {
  storage::Table table;
  size_t num_jobs = 0;
  double simulated_ms = 0.0;
};

/// A scaled-down Hive: a MetaStore over HDFS warehouse files plus a
/// compiler that turns a (parsed + bound) HiveQL SELECT into a DAG of
/// MapReduce jobs and runs them. Supports scans, filters, projections,
/// inner/left/cross/semi/anti equi-joins (repartition joins), hash
/// aggregation, order-by (single reducer) and limit.
class HiveEngine : public plan::BinderCatalog {
 public:
  HiveEngine(Hdfs* hdfs, MapReduceEngine* mapreduce)
      : hdfs_(hdfs), mapreduce_(mapreduce) {}

  // ---- MetaStore ------------------------------------------------------
  [[nodiscard]] Status CreateTable(const std::string& name, std::shared_ptr<Schema> schema,
                     bool temporary = false);
  [[nodiscard]] Status LoadRows(const std::string& name,
                  const std::vector<std::vector<Value>>& rows);
  [[nodiscard]] Result<const HiveTable*> GetTable(const std::string& name) const;
  [[nodiscard]] Status DropTable(const std::string& name);
  [[nodiscard]] Result<HiveTableStats> Stats(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  // ---- Query execution ------------------------------------------------
  /// Parses, plans and executes a HiveQL SELECT as MapReduce jobs.
  [[nodiscard]] Result<HiveResult> ExecuteQuery(const std::string& sql);

  /// CREATE TABLE AS SELECT. Per the paper this is a two-phase
  /// implementation (schema first, then the target table), which is the
  /// source of the materialization overhead in Figure 15. Returns the
  /// created table's name.
  [[nodiscard]] Result<std::string> CreateTableAsSelect(const std::string& name,
                                          const std::string& sql);

  Hdfs* hdfs() const { return hdfs_; }
  MapReduceEngine* mapreduce() const { return mapreduce_; }

  // ---- plan::BinderCatalog (Hive's own name resolution) ---------------
  [[nodiscard]] Result<plan::TableBinding> ResolveTable(
      const std::string& name) const override;
  [[nodiscard]] Result<plan::TableFunctionBinding> ResolveTableFunction(
      const std::string& name) const override;

 private:
  /// An intermediate relation: an HDFS file + the schema of its rows.
  struct Dataset {
    std::string path;
    std::shared_ptr<Schema> schema;
  };

  [[nodiscard]] Result<Dataset> CompileNode(const plan::LogicalOp& op, size_t* job_counter,
                              size_t query_id);
  std::string TempPath(size_t query_id, size_t job) const;

  Hdfs* hdfs_;
  MapReduceEngine* mapreduce_;
  std::map<std::string, HiveTable> tables_;
  size_t next_query_id_ = 1;
  size_t next_temp_table_ = 1;
};

}  // namespace hana::hadoop

#endif  // HANA_HADOOP_HIVE_H_
