# Empty compiler generated dependencies file for bw_cold_data_aging.
# This may be replaced when dependencies are built.
