file(REMOVE_RECURSE
  "CMakeFiles/bw_cold_data_aging.dir/bw_cold_data_aging.cpp.o"
  "CMakeFiles/bw_cold_data_aging.dir/bw_cold_data_aging.cpp.o.d"
  "bw_cold_data_aging"
  "bw_cold_data_aging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bw_cold_data_aging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
