# Empty compiler generated dependencies file for telecom_monitoring.
# This may be replaced when dependencies are built.
