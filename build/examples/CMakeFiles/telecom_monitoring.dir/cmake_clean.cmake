file(REMOVE_RECURSE
  "CMakeFiles/telecom_monitoring.dir/telecom_monitoring.cpp.o"
  "CMakeFiles/telecom_monitoring.dir/telecom_monitoring.cpp.o.d"
  "telecom_monitoring"
  "telecom_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telecom_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
