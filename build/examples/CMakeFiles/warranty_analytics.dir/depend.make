# Empty dependencies file for warranty_analytics.
# This may be replaced when dependencies are built.
