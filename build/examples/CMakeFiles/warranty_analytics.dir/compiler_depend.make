# Empty compiler generated dependencies file for warranty_analytics.
# This may be replaced when dependencies are built.
