file(REMOVE_RECURSE
  "CMakeFiles/warranty_analytics.dir/warranty_analytics.cpp.o"
  "CMakeFiles/warranty_analytics.dir/warranty_analytics.cpp.o.d"
  "warranty_analytics"
  "warranty_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warranty_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
