# Empty dependencies file for hana_federation.
# This may be replaced when dependencies are built.
