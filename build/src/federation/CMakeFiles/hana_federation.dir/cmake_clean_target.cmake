file(REMOVE_RECURSE
  "libhana_federation.a"
)
