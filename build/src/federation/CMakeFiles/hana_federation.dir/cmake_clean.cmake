file(REMOVE_RECURSE
  "CMakeFiles/hana_federation.dir/adapter.cc.o"
  "CMakeFiles/hana_federation.dir/adapter.cc.o.d"
  "CMakeFiles/hana_federation.dir/hive_adapter.cc.o"
  "CMakeFiles/hana_federation.dir/hive_adapter.cc.o.d"
  "CMakeFiles/hana_federation.dir/iq_adapter.cc.o"
  "CMakeFiles/hana_federation.dir/iq_adapter.cc.o.d"
  "CMakeFiles/hana_federation.dir/sda.cc.o"
  "CMakeFiles/hana_federation.dir/sda.cc.o.d"
  "libhana_federation.a"
  "libhana_federation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hana_federation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
