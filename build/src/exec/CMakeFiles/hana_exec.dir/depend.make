# Empty dependencies file for hana_exec.
# This may be replaced when dependencies are built.
