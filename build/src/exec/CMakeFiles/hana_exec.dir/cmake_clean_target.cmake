file(REMOVE_RECURSE
  "libhana_exec.a"
)
