# Empty compiler generated dependencies file for hana_exec.
# This may be replaced when dependencies are built.
