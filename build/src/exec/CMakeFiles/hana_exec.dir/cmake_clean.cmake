file(REMOVE_RECURSE
  "CMakeFiles/hana_exec.dir/evaluator.cc.o"
  "CMakeFiles/hana_exec.dir/evaluator.cc.o.d"
  "CMakeFiles/hana_exec.dir/operators.cc.o"
  "CMakeFiles/hana_exec.dir/operators.cc.o.d"
  "libhana_exec.a"
  "libhana_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hana_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
