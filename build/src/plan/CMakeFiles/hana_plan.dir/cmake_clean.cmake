file(REMOVE_RECURSE
  "CMakeFiles/hana_plan.dir/binder.cc.o"
  "CMakeFiles/hana_plan.dir/binder.cc.o.d"
  "CMakeFiles/hana_plan.dir/bound_expr.cc.o"
  "CMakeFiles/hana_plan.dir/bound_expr.cc.o.d"
  "CMakeFiles/hana_plan.dir/join_analysis.cc.o"
  "CMakeFiles/hana_plan.dir/join_analysis.cc.o.d"
  "CMakeFiles/hana_plan.dir/logical.cc.o"
  "CMakeFiles/hana_plan.dir/logical.cc.o.d"
  "CMakeFiles/hana_plan.dir/rewrites.cc.o"
  "CMakeFiles/hana_plan.dir/rewrites.cc.o.d"
  "libhana_plan.a"
  "libhana_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hana_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
