
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/plan/binder.cc" "src/plan/CMakeFiles/hana_plan.dir/binder.cc.o" "gcc" "src/plan/CMakeFiles/hana_plan.dir/binder.cc.o.d"
  "/root/repo/src/plan/bound_expr.cc" "src/plan/CMakeFiles/hana_plan.dir/bound_expr.cc.o" "gcc" "src/plan/CMakeFiles/hana_plan.dir/bound_expr.cc.o.d"
  "/root/repo/src/plan/join_analysis.cc" "src/plan/CMakeFiles/hana_plan.dir/join_analysis.cc.o" "gcc" "src/plan/CMakeFiles/hana_plan.dir/join_analysis.cc.o.d"
  "/root/repo/src/plan/logical.cc" "src/plan/CMakeFiles/hana_plan.dir/logical.cc.o" "gcc" "src/plan/CMakeFiles/hana_plan.dir/logical.cc.o.d"
  "/root/repo/src/plan/rewrites.cc" "src/plan/CMakeFiles/hana_plan.dir/rewrites.cc.o" "gcc" "src/plan/CMakeFiles/hana_plan.dir/rewrites.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hana_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/hana_sql.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
