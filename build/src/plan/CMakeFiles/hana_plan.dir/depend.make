# Empty dependencies file for hana_plan.
# This may be replaced when dependencies are built.
