file(REMOVE_RECURSE
  "libhana_plan.a"
)
