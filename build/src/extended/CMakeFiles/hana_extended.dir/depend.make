# Empty dependencies file for hana_extended.
# This may be replaced when dependencies are built.
