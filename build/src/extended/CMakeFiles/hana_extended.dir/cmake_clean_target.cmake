file(REMOVE_RECURSE
  "libhana_extended.a"
)
