file(REMOVE_RECURSE
  "CMakeFiles/hana_extended.dir/extended_store.cc.o"
  "CMakeFiles/hana_extended.dir/extended_store.cc.o.d"
  "CMakeFiles/hana_extended.dir/iq_engine.cc.o"
  "CMakeFiles/hana_extended.dir/iq_engine.cc.o.d"
  "libhana_extended.a"
  "libhana_extended.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hana_extended.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
