
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/extended/extended_store.cc" "src/extended/CMakeFiles/hana_extended.dir/extended_store.cc.o" "gcc" "src/extended/CMakeFiles/hana_extended.dir/extended_store.cc.o.d"
  "/root/repo/src/extended/iq_engine.cc" "src/extended/CMakeFiles/hana_extended.dir/iq_engine.cc.o" "gcc" "src/extended/CMakeFiles/hana_extended.dir/iq_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hana_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/hana_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/hana_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/hana_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/hana_exec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
