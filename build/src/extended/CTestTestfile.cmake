# CMake generated Testfile for 
# Source directory: /root/repo/src/extended
# Build directory: /root/repo/build/src/extended
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
