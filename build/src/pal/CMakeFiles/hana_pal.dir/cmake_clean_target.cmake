file(REMOVE_RECURSE
  "libhana_pal.a"
)
