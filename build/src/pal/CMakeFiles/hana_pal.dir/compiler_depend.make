# Empty compiler generated dependencies file for hana_pal.
# This may be replaced when dependencies are built.
