file(REMOVE_RECURSE
  "CMakeFiles/hana_pal.dir/apriori.cc.o"
  "CMakeFiles/hana_pal.dir/apriori.cc.o.d"
  "libhana_pal.a"
  "libhana_pal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hana_pal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
