# CMake generated Testfile for 
# Source directory: /root/repo/src/pal
# Build directory: /root/repo/build/src/pal
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
