file(REMOVE_RECURSE
  "libhana_txn.a"
)
