file(REMOVE_RECURSE
  "CMakeFiles/hana_txn.dir/participants.cc.o"
  "CMakeFiles/hana_txn.dir/participants.cc.o.d"
  "CMakeFiles/hana_txn.dir/two_phase.cc.o"
  "CMakeFiles/hana_txn.dir/two_phase.cc.o.d"
  "libhana_txn.a"
  "libhana_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hana_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
