# Empty dependencies file for hana_txn.
# This may be replaced when dependencies are built.
