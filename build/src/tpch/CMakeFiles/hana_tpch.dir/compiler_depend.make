# Empty compiler generated dependencies file for hana_tpch.
# This may be replaced when dependencies are built.
