file(REMOVE_RECURSE
  "libhana_tpch.a"
)
