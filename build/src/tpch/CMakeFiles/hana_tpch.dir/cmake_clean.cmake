file(REMOVE_RECURSE
  "CMakeFiles/hana_tpch.dir/dbgen.cc.o"
  "CMakeFiles/hana_tpch.dir/dbgen.cc.o.d"
  "CMakeFiles/hana_tpch.dir/queries.cc.o"
  "CMakeFiles/hana_tpch.dir/queries.cc.o.d"
  "libhana_tpch.a"
  "libhana_tpch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hana_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
