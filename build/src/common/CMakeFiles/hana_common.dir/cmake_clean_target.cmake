file(REMOVE_RECURSE
  "libhana_common.a"
)
