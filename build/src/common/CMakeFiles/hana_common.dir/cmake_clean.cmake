file(REMOVE_RECURSE
  "CMakeFiles/hana_common.dir/schema.cc.o"
  "CMakeFiles/hana_common.dir/schema.cc.o.d"
  "CMakeFiles/hana_common.dir/status.cc.o"
  "CMakeFiles/hana_common.dir/status.cc.o.d"
  "CMakeFiles/hana_common.dir/strings.cc.o"
  "CMakeFiles/hana_common.dir/strings.cc.o.d"
  "CMakeFiles/hana_common.dir/util.cc.o"
  "CMakeFiles/hana_common.dir/util.cc.o.d"
  "CMakeFiles/hana_common.dir/value.cc.o"
  "CMakeFiles/hana_common.dir/value.cc.o.d"
  "libhana_common.a"
  "libhana_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hana_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
