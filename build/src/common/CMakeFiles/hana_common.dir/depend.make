# Empty dependencies file for hana_common.
# This may be replaced when dependencies are built.
