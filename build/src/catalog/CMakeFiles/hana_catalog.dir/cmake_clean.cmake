file(REMOVE_RECURSE
  "CMakeFiles/hana_catalog.dir/catalog.cc.o"
  "CMakeFiles/hana_catalog.dir/catalog.cc.o.d"
  "libhana_catalog.a"
  "libhana_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hana_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
