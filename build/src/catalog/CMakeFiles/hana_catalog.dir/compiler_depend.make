# Empty compiler generated dependencies file for hana_catalog.
# This may be replaced when dependencies are built.
