file(REMOVE_RECURSE
  "libhana_catalog.a"
)
