# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("storage")
subdirs("extended")
subdirs("txn")
subdirs("sql")
subdirs("plan")
subdirs("exec")
subdirs("catalog")
subdirs("optimizer")
subdirs("hadoop")
subdirs("federation")
subdirs("esp")
subdirs("timeseries")
subdirs("graph")
subdirs("pal")
subdirs("tpch")
subdirs("platform")
