file(REMOVE_RECURSE
  "CMakeFiles/hana_hadoop.dir/hdfs.cc.o"
  "CMakeFiles/hana_hadoop.dir/hdfs.cc.o.d"
  "CMakeFiles/hana_hadoop.dir/hive.cc.o"
  "CMakeFiles/hana_hadoop.dir/hive.cc.o.d"
  "CMakeFiles/hana_hadoop.dir/mapreduce.cc.o"
  "CMakeFiles/hana_hadoop.dir/mapreduce.cc.o.d"
  "CMakeFiles/hana_hadoop.dir/serde.cc.o"
  "CMakeFiles/hana_hadoop.dir/serde.cc.o.d"
  "libhana_hadoop.a"
  "libhana_hadoop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hana_hadoop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
