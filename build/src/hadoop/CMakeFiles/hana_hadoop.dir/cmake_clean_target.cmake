file(REMOVE_RECURSE
  "libhana_hadoop.a"
)
