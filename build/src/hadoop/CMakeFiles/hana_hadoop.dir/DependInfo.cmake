
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hadoop/hdfs.cc" "src/hadoop/CMakeFiles/hana_hadoop.dir/hdfs.cc.o" "gcc" "src/hadoop/CMakeFiles/hana_hadoop.dir/hdfs.cc.o.d"
  "/root/repo/src/hadoop/hive.cc" "src/hadoop/CMakeFiles/hana_hadoop.dir/hive.cc.o" "gcc" "src/hadoop/CMakeFiles/hana_hadoop.dir/hive.cc.o.d"
  "/root/repo/src/hadoop/mapreduce.cc" "src/hadoop/CMakeFiles/hana_hadoop.dir/mapreduce.cc.o" "gcc" "src/hadoop/CMakeFiles/hana_hadoop.dir/mapreduce.cc.o.d"
  "/root/repo/src/hadoop/serde.cc" "src/hadoop/CMakeFiles/hana_hadoop.dir/serde.cc.o" "gcc" "src/hadoop/CMakeFiles/hana_hadoop.dir/serde.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hana_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/hana_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/hana_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/hana_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/hana_exec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
