# Empty dependencies file for hana_hadoop.
# This may be replaced when dependencies are built.
