file(REMOVE_RECURSE
  "CMakeFiles/hana_optimizer.dir/optimizer.cc.o"
  "CMakeFiles/hana_optimizer.dir/optimizer.cc.o.d"
  "CMakeFiles/hana_optimizer.dir/plan_to_sql.cc.o"
  "CMakeFiles/hana_optimizer.dir/plan_to_sql.cc.o.d"
  "CMakeFiles/hana_optimizer.dir/statistics.cc.o"
  "CMakeFiles/hana_optimizer.dir/statistics.cc.o.d"
  "libhana_optimizer.a"
  "libhana_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hana_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
