# Empty compiler generated dependencies file for hana_optimizer.
# This may be replaced when dependencies are built.
