file(REMOVE_RECURSE
  "libhana_optimizer.a"
)
