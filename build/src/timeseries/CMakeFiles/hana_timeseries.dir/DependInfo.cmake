
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/timeseries/series_table.cc" "src/timeseries/CMakeFiles/hana_timeseries.dir/series_table.cc.o" "gcc" "src/timeseries/CMakeFiles/hana_timeseries.dir/series_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hana_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/hana_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
