file(REMOVE_RECURSE
  "CMakeFiles/hana_timeseries.dir/series_table.cc.o"
  "CMakeFiles/hana_timeseries.dir/series_table.cc.o.d"
  "libhana_timeseries.a"
  "libhana_timeseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hana_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
