file(REMOVE_RECURSE
  "libhana_timeseries.a"
)
