# Empty dependencies file for hana_timeseries.
# This may be replaced when dependencies are built.
