
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/codec.cc" "src/storage/CMakeFiles/hana_storage.dir/codec.cc.o" "gcc" "src/storage/CMakeFiles/hana_storage.dir/codec.cc.o.d"
  "/root/repo/src/storage/column_table.cc" "src/storage/CMakeFiles/hana_storage.dir/column_table.cc.o" "gcc" "src/storage/CMakeFiles/hana_storage.dir/column_table.cc.o.d"
  "/root/repo/src/storage/column_vector.cc" "src/storage/CMakeFiles/hana_storage.dir/column_vector.cc.o" "gcc" "src/storage/CMakeFiles/hana_storage.dir/column_vector.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hana_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
