file(REMOVE_RECURSE
  "CMakeFiles/hana_storage.dir/codec.cc.o"
  "CMakeFiles/hana_storage.dir/codec.cc.o.d"
  "CMakeFiles/hana_storage.dir/column_table.cc.o"
  "CMakeFiles/hana_storage.dir/column_table.cc.o.d"
  "CMakeFiles/hana_storage.dir/column_vector.cc.o"
  "CMakeFiles/hana_storage.dir/column_vector.cc.o.d"
  "libhana_storage.a"
  "libhana_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hana_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
