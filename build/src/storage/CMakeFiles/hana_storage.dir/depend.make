# Empty dependencies file for hana_storage.
# This may be replaced when dependencies are built.
