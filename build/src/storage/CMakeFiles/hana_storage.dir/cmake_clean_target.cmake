file(REMOVE_RECURSE
  "libhana_storage.a"
)
