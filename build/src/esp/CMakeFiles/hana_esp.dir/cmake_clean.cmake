file(REMOVE_RECURSE
  "CMakeFiles/hana_esp.dir/engine.cc.o"
  "CMakeFiles/hana_esp.dir/engine.cc.o.d"
  "libhana_esp.a"
  "libhana_esp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hana_esp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
