file(REMOVE_RECURSE
  "libhana_esp.a"
)
