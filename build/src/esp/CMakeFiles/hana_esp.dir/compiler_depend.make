# Empty compiler generated dependencies file for hana_esp.
# This may be replaced when dependencies are built.
