# Empty dependencies file for hana_platform.
# This may be replaced when dependencies are built.
