file(REMOVE_RECURSE
  "CMakeFiles/hana_platform.dir/platform.cc.o"
  "CMakeFiles/hana_platform.dir/platform.cc.o.d"
  "libhana_platform.a"
  "libhana_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hana_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
