file(REMOVE_RECURSE
  "libhana_platform.a"
)
