# Empty compiler generated dependencies file for hana_platform.
# This may be replaced when dependencies are built.
