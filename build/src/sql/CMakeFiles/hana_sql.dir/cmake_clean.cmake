file(REMOVE_RECURSE
  "CMakeFiles/hana_sql.dir/ast.cc.o"
  "CMakeFiles/hana_sql.dir/ast.cc.o.d"
  "CMakeFiles/hana_sql.dir/lexer.cc.o"
  "CMakeFiles/hana_sql.dir/lexer.cc.o.d"
  "CMakeFiles/hana_sql.dir/parser.cc.o"
  "CMakeFiles/hana_sql.dir/parser.cc.o.d"
  "libhana_sql.a"
  "libhana_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hana_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
