# Empty dependencies file for hana_sql.
# This may be replaced when dependencies are built.
