file(REMOVE_RECURSE
  "libhana_sql.a"
)
