file(REMOVE_RECURSE
  "CMakeFiles/hana_graph.dir/graph_engine.cc.o"
  "CMakeFiles/hana_graph.dir/graph_engine.cc.o.d"
  "libhana_graph.a"
  "libhana_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hana_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
