file(REMOVE_RECURSE
  "libhana_graph.a"
)
