# Empty dependencies file for hana_graph.
# This may be replaced when dependencies are built.
