# Empty compiler generated dependencies file for bench_pal_apriori.
# This may be replaced when dependencies are built.
