file(REMOVE_RECURSE
  "CMakeFiles/bench_pal_apriori.dir/bench_pal_apriori.cc.o"
  "CMakeFiles/bench_pal_apriori.dir/bench_pal_apriori.cc.o.d"
  "bench_pal_apriori"
  "bench_pal_apriori.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pal_apriori.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
