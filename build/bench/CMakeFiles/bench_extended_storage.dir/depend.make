# Empty dependencies file for bench_extended_storage.
# This may be replaced when dependencies are built.
