file(REMOVE_RECURSE
  "CMakeFiles/bench_extended_storage.dir/bench_extended_storage.cc.o"
  "CMakeFiles/bench_extended_storage.dir/bench_extended_storage.cc.o.d"
  "bench_extended_storage"
  "bench_extended_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extended_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
