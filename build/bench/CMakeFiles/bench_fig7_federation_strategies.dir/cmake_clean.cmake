file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_federation_strategies.dir/bench_fig7_federation_strategies.cc.o"
  "CMakeFiles/bench_fig7_federation_strategies.dir/bench_fig7_federation_strategies.cc.o.d"
  "bench_fig7_federation_strategies"
  "bench_fig7_federation_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_federation_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
