# Empty dependencies file for bench_fig7_federation_strategies.
# This may be replaced when dependencies are built.
