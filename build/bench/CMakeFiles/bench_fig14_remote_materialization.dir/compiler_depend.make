# Empty compiler generated dependencies file for bench_fig14_remote_materialization.
# This may be replaced when dependencies are built.
