# Empty dependencies file for bench_fig2_timeseries_compression.
# This may be replaced when dependencies are built.
