file(REMOVE_RECURSE
  "CMakeFiles/bench_esp_throughput.dir/bench_esp_throughput.cc.o"
  "CMakeFiles/bench_esp_throughput.dir/bench_esp_throughput.cc.o.d"
  "bench_esp_throughput"
  "bench_esp_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_esp_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
