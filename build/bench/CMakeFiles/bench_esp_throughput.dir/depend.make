# Empty dependencies file for bench_esp_throughput.
# This may be replaced when dependencies are built.
