file(REMOVE_RECURSE
  "CMakeFiles/bench_txn_2pc.dir/bench_txn_2pc.cc.o"
  "CMakeFiles/bench_txn_2pc.dir/bench_txn_2pc.cc.o.d"
  "bench_txn_2pc"
  "bench_txn_2pc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_txn_2pc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
