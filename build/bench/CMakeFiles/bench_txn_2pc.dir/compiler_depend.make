# Empty compiler generated dependencies file for bench_txn_2pc.
# This may be replaced when dependencies are built.
