
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_txn_2pc.cc" "bench/CMakeFiles/bench_txn_2pc.dir/bench_txn_2pc.cc.o" "gcc" "bench/CMakeFiles/bench_txn_2pc.dir/bench_txn_2pc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/txn/CMakeFiles/hana_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/extended/CMakeFiles/hana_extended.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/hana_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/hana_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/hana_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/hana_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hana_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
