file(REMOVE_RECURSE
  "CMakeFiles/esp_test.dir/esp_test.cc.o"
  "CMakeFiles/esp_test.dir/esp_test.cc.o.d"
  "esp_test"
  "esp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
