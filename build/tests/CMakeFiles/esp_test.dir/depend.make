# Empty dependencies file for esp_test.
# This may be replaced when dependencies are built.
