file(REMOVE_RECURSE
  "CMakeFiles/extended_store_test.dir/extended_store_test.cc.o"
  "CMakeFiles/extended_store_test.dir/extended_store_test.cc.o.d"
  "extended_store_test"
  "extended_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extended_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
