
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/extended_store_test.cc" "tests/CMakeFiles/extended_store_test.dir/extended_store_test.cc.o" "gcc" "tests/CMakeFiles/extended_store_test.dir/extended_store_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/extended/CMakeFiles/hana_extended.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/hana_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/hana_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/hana_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/hana_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hana_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
