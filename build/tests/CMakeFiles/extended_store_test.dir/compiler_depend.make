# Empty compiler generated dependencies file for extended_store_test.
# This may be replaced when dependencies are built.
