file(REMOVE_RECURSE
  "CMakeFiles/hadoop_test.dir/hadoop_test.cc.o"
  "CMakeFiles/hadoop_test.dir/hadoop_test.cc.o.d"
  "hadoop_test"
  "hadoop_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hadoop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
