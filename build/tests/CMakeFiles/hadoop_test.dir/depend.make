# Empty dependencies file for hadoop_test.
# This may be replaced when dependencies are built.
