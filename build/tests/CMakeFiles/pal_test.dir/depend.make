# Empty dependencies file for pal_test.
# This may be replaced when dependencies are built.
