file(REMOVE_RECURSE
  "CMakeFiles/pal_test.dir/pal_test.cc.o"
  "CMakeFiles/pal_test.dir/pal_test.cc.o.d"
  "pal_test"
  "pal_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
