file(REMOVE_RECURSE
  "CMakeFiles/platform_smoke_test.dir/platform_smoke_test.cc.o"
  "CMakeFiles/platform_smoke_test.dir/platform_smoke_test.cc.o.d"
  "platform_smoke_test"
  "platform_smoke_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platform_smoke_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
