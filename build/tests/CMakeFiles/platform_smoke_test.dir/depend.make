# Empty dependencies file for platform_smoke_test.
# This may be replaced when dependencies are built.
