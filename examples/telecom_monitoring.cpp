// The telecom complex-event-processing scenario of Figure 8: sensors in
// a mobile network emit call events at high velocity. The ESP
// prefilters and aggregates them into HANA time-series tables, archives
// raw events to HDFS for offline map-reduce analysis, detects outage
// patterns in real time, and HANA queries join live window contents
// with business data (Figure 9's three use cases).

#include <cstdio>

#include "common/util.h"
#include "esp/engine.h"
#include "platform/platform.h"
#include "timeseries/series_table.h"

using hana::Status;
using hana::Value;

namespace {

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  hana::platform::Platform db;
  hana::esp::EspEngine esp;

  // Business data in the HANA core: cell tower master data.
  Check(db.Run(R"(
      CREATE COLUMN TABLE towers (cell_id BIGINT, city VARCHAR(20),
                                  capacity BIGINT);
      CREATE COLUMN TABLE network_health (window_end BIGINT, city VARCHAR(20),
                                          calls BIGINT, drops BIGINT,
                                          avg_signal DOUBLE);
      CREATE COLUMN TABLE outage_alerts (ts BIGINT, cell_id BIGINT,
                                         city VARCHAR(20), signal DOUBLE);
  )"),
        "HANA schema");
  const char* kCities[] = {"Dresden", "Walldorf", "Berlin", "Potsdam"};
  std::vector<std::vector<Value>> towers;
  for (int64_t cell = 0; cell < 40; ++cell) {
    towers.push_back({Value::Int(cell), Value::String(kCities[cell % 4]),
                      Value::Int(200 + (cell % 5) * 100)});
  }
  Check(db.catalog().Insert("towers", towers), "tower master data");

  // The raw event stream from the network probes.
  auto call_schema = std::make_shared<hana::Schema>(
      std::vector<hana::ColumnDef>{{"cell_id", hana::DataType::kInt64, false},
                                   {"signal", hana::DataType::kDouble, false},
                                   {"dropped", hana::DataType::kInt64,
                                    false}});
  Check(esp.CreateStream("calls", call_schema), "stream");

  // Use case 1 (prefilter/aggregate + forward): per-city one-second
  // aggregates land in a HANA table. The ESP join enriches raw events
  // with the city from the towers dimension first.
  auto* health_entry = *db.catalog().GetTable("network_health");
  auto forward =
      hana::esp::CqBuilder(&esp, "calls")
          .LookupJoin(db.Query("SELECT cell_id, city FROM towers").value(),
                      "cell_id", "cell_id")
          .KeepMillis(1000)
          .GroupBy({"city"}, {"COUNT(*) AS calls", "SUM(dropped) AS drops",
                              "AVG(signal) AS avg_signal"})
          .IntoCallback([&](const hana::esp::Event& event) {
            std::vector<Value> row;
            row.push_back(Value::Int(event.timestamp_ms));
            row.insert(row.end(), event.values.begin(), event.values.end());
            // Column order: city, calls, drops, avg_signal ->
            // window_end, city, calls, drops, avg_signal.
            (void)health_entry->column_table->AppendRow(
                {Value::Int(event.timestamp_ms), event.values[0],
                 event.values[1], event.values[2], event.values[3]});
          })
          .Finish("health_per_city");
  Check(forward.status(), "forward query");

  // Raw archive: every dropped call goes to HDFS for offline analysis.
  auto archive = hana::esp::CqBuilder(&esp, "calls")
                     .Where("dropped = 1")
                     .IntoHdfs(db.hdfs(), "/archive/network/dropped_calls")
                     .Finish("raw_archive");
  Check(archive.status(), "archive query");

  // Pattern detection: three weak dropped calls on the same feed within
  // two seconds trigger an outage alert, immediately forwarded to HANA.
  auto* alerts_entry = *db.catalog().GetTable("outage_alerts");
  auto outage =
      hana::esp::CqBuilder(&esp, "calls")
          .MatchPattern({"dropped = 1 AND signal < 15",
                         "dropped = 1 AND signal < 15",
                         "dropped = 1 AND signal < 15"},
                        2000)
          .IntoCallback([&](const hana::esp::Event& event) {
            (void)alerts_entry->column_table->AppendRow(
                {Value::Int(event.timestamp_ms), event.values[0],
                 Value::String("?"), event.values[1]});
          })
          .Finish("outage_pattern");
  Check(outage.status(), "pattern query");

  // A sliding window retained for HANA-join queries (use case 3).
  auto live = hana::esp::CqBuilder(&esp, "calls")
                  .KeepRows(100000)  // Retained; closed on flush.
                  .Finish("live_window");
  Check(live.status(), "live window");

  // ---- Drive the network ------------------------------------------------
  hana::Rng rng(2026);
  size_t published = 0;
  for (int64_t ts = 0; ts < 10000; ++ts) {
    for (int fan = 0; fan < 5; ++fan) {
      int64_t cell = rng.Uniform(0, 39);
      bool failing_cell = cell == 13 && ts > 6000;  // A degrading tower.
      double signal = failing_cell ? rng.NextDouble() * 14.0
                                   : 20.0 + rng.NextDouble() * 70.0;
      int64_t dropped = failing_cell
                            ? 1
                            : (rng.Uniform(0, 24) == 0 ? 1 : 0);
      Check(esp.Publish("calls", ts,
                        {Value::Int(cell), Value::Double(signal),
                         Value::Int(dropped)}),
            "publish");
      ++published;
    }
  }
  esp.FlushAll();
  std::printf("published %zu events; ESP emitted %zu health windows, "
              "%zu alerts\n\n",
              published, (*forward)->events_out(), (*outage)->events_out());

  // ---- Business queries on the forwarded aggregates -----------------------
  auto worst = db.Query(R"(
      SELECT city, SUM(drops) AS drops, SUM(calls) AS calls
      FROM network_health GROUP BY city ORDER BY drops DESC)");
  Check(worst.status(), "health query");
  std::printf("per-city health (forwarded by ESP):\n%s\n",
              worst->ToString().c_str());

  auto alerts = db.Query(R"(
      SELECT o.cell_id, t.city, COUNT(*) AS alerts
      FROM outage_alerts o JOIN towers t ON o.cell_id = t.cell_id
      GROUP BY o.cell_id, t.city)");
  Check(alerts.status(), "alerts query");
  std::printf("outage alerts joined with master data:\n%s\n",
              alerts->ToString().c_str());

  // HANA join (use case 3): snapshot the live window as a table and
  // join it with tower capacity inside one SQL statement.
  hana::storage::Table window = (*live)->WindowContents();
  Check(db.Run("CREATE COLUMN TABLE live_calls (cell_id BIGINT, "
               "signal DOUBLE, dropped BIGINT)"),
        "window table");
  Check(db.catalog().Insert("live_calls", window.rows()), "window snapshot");
  auto hana_join = db.Query(R"(
      SELECT t.city, COUNT(*) AS live, AVG(l.signal) AS avg_signal
      FROM live_calls l JOIN towers t ON l.cell_id = t.cell_id
      GROUP BY t.city)");
  Check(hana_join.status(), "HANA join");
  std::printf("HANA join with the current ESP window:\n%s\n",
              hana_join->ToString().c_str());

  // ---- Offline: map-reduce over the HDFS archive --------------------------
  auto info = db.hdfs()->Stat("/archive/network/dropped_calls");
  Check(info.status(), "archive stat");
  std::printf("HDFS archive: %zu dropped-call records (%zu bytes, %zu "
              "blocks)\n",
              info->num_lines, info->bytes, info->num_blocks);
  hana::hadoop::JobSpec job;
  job.name = "drops-per-cell";
  job.inputs = {"/archive/network/dropped_calls"};
  job.output = "/analytics/drops_per_cell";
  job.mapper = [](int, const std::string& line,
                  std::vector<hana::hadoop::KeyValue>* out) {
    // Archived line: ts \t cell_id \t signal \t dropped.
    auto first = line.find('\t');
    auto second = line.find('\t', first + 1);
    out->emplace_back(line.substr(first + 1, second - first - 1), "1");
  };
  job.reducer = [](const std::string& key,
                   const std::vector<std::string>& values,
                   std::vector<std::string>* out) {
    out->push_back(key + "\t" + std::to_string(values.size()));
  };
  auto stats = db.mapreduce()->RunJob(job);
  Check(stats.status(), "map-reduce job");
  auto derived = db.hdfs()->ReadFile("/analytics/drops_per_cell");
  Check(derived.status(), "read analytics");
  std::printf(
      "map-reduce archive analysis: %zu map tasks, %.0f ms simulated, "
      "%zu cells with drops\n",
      stats->map_tasks, stats->simulated_ms, derived->size());
  std::printf("telecom monitoring scenario complete.\n");
  return 0;
}
