// Quickstart: a tour of the platform's public API — the single point of
// access of Section 2. Creates in-memory and extended-storage tables,
// runs cross-store SQL, registers a Hive remote source through SDA and
// demonstrates remote materialization (Figures 12/13).

#include <cstdio>

#include "platform/platform.h"

using hana::Status;
using hana::Value;
using hana::platform::ExecResult;
using hana::platform::Platform;

namespace {

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

void Show(Platform* db, const std::string& sql) {
  std::printf("SQL> %s\n", sql.c_str());
  auto result = db->Execute(sql);
  Check(result.status(), "execute");
  if (result->table.num_rows() > 0 ||
      result->table.schema()->num_columns() > 0) {
    std::printf("%s", result->table.ToString(10).c_str());
  } else {
    std::printf("%s\n", result->message.c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  Platform db;

  std::printf("== 1. In-memory column store (HANA core) ==\n\n");
  Check(db.Run(R"(
      CREATE COLUMN TABLE products (sku BIGINT NOT NULL,
                                    name VARCHAR(30),
                                    price DOUBLE);
      INSERT INTO products VALUES
        (1, 'pump',   129.99), (2, 'valve',   49.50),
        (3, 'sensor',  18.75), (4, 'gauge',   22.00);
  )"),
        "schema setup");
  Show(&db, "SELECT name, price FROM products WHERE price < 50");
  Show(&db,
       "SELECT COUNT(*) AS n, AVG(price) AS avg_price FROM products");

  std::printf("== 2. Extended storage (IQ): cold data on disk ==\n\n");
  Check(db.Run(R"(
      CREATE TABLE order_archive (order_id BIGINT, sku BIGINT,
                                  qty BIGINT, total DOUBLE)
        USING EXTENDED STORAGE)"),
        "extended table");
  std::vector<std::vector<Value>> archive;
  for (int64_t i = 0; i < 50000; ++i) {
    archive.push_back({Value::Int(i), Value::Int(1 + i % 4),
                       Value::Int(1 + i % 7),
                       Value::Double(10.0 + static_cast<double>(i % 500))});
  }
  Check(db.catalog().Insert("order_archive", archive), "direct bulk load");
  // Cross-store join: in-memory dimension x disk-resident facts. The
  // optimizer ships the cold subplan to the IQ engine (function
  // shipping) and picks the semijoin strategy for the selective probe.
  Show(&db, R"(SELECT p.name, SUM(a.total) AS revenue
      FROM products p JOIN order_archive a ON p.sku = a.sku
      WHERE p.name = 'pump'
      GROUP BY p.name)");
  auto plan = db.Explain(R"(SELECT p.name, SUM(a.total) AS revenue
      FROM products p JOIN order_archive a ON p.sku = a.sku
      WHERE p.name = 'pump'
      GROUP BY p.name)");
  Check(plan.status(), "explain");
  std::printf("federated plan:\n%s\n", plan->c_str());

  std::printf("== 3. SDA: Hadoop/Hive as a remote source ==\n\n");
  // Populate a Hive table on the embedded cluster.
  auto schema = std::make_shared<hana::Schema>(
      std::vector<hana::ColumnDef>{{"product_id", hana::DataType::kInt64,
                                    false},
                                   {"product_name", hana::DataType::kString,
                                    false},
                                   {"brand_name", hana::DataType::kString,
                                    false}});
  Check(db.hive()->CreateTable("product", schema), "hive table");
  std::vector<std::vector<Value>> hive_rows;
  const char* brands[] = {"dflo", "acme", "nova"};
  for (int64_t i = 0; i < 3000; ++i) {
    hive_rows.push_back({Value::Int(i),
                         Value::String("P" + std::to_string(i)),
                         Value::String(brands[i % 3])});
  }
  Check(db.hive()->LoadRows("product", hive_rows), "hive load");

  // The exact workflow of Section 4.2.
  Check(db.Run(R"(
      CREATE REMOTE SOURCE HIVE1 ADAPTER "hiveodbc" CONFIGURATION
        'DSN=hive1' WITH CREDENTIAL TYPE 'PASSWORD'
        USING 'user=dfuser;password=dfpass';
      CREATE VIRTUAL TABLE "VIRTUAL_PRODUCT"
        AT "HIVE1"."dflo"."dflo"."product";
  )"),
        "remote source");
  Show(&db, R"(SELECT product_name, brand_name FROM "VIRTUAL_PRODUCT"
      WHERE brand_name = 'dflo' LIMIT 5)");

  std::printf("== 4. Remote materialization (Section 4.4) ==\n\n");
  Check(db.SetParameter("enable_remote_cache", "true"), "parameter");
  std::string query = R"(SELECT brand_name, COUNT(*) AS n
      FROM "VIRTUAL_PRODUCT" WHERE brand_name <> 'nova'
      GROUP BY brand_name WITH HINT (USE_REMOTE_CACHE))";
  auto cold = db.Execute(query);
  Check(cold.status(), "cold run");
  auto warm = db.Execute(query);
  Check(warm.status(), "warm run");
  std::printf(
      "first run (materializes): %.1f ms, %zu map-reduce jobs\n"
      "second run (cache hit):   %.1f ms, cache_hit=%d\n"
      "speedup: %.0fx\n\n",
      cold->metrics.total_ms, cold->metrics.mapreduce_jobs,
      warm->metrics.total_ms, warm->metrics.remote_cache_hit,
      cold->metrics.total_ms / warm->metrics.total_ms);
  std::printf("%s\n", warm->table.ToString().c_str());

  std::printf("quickstart complete.\n");
  return 0;
}
