// The SAP BW cold-data scenario of Section 3.1: a persistent staging
// area (PSA) mirrors extracted source data into the warehouse. It is
// rarely re-read after refinement, so it belongs on cheap disk — the
// extended storage. A hybrid sales DSO keeps recent partitions hot in
// memory and ages older data into cold IQ partitions; queries span both
// transparently (the Union Plan), and writes commit atomically across
// both engines via the distributed two-phase protocol.

#include <cstdio>

#include "common/util.h"
#include "platform/platform.h"
#include "txn/participants.h"

using hana::Status;
using hana::Value;

namespace {

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  hana::platform::Platform db;

  std::printf("== 1. PSA on extended storage (direct load) ==\n\n");
  Check(db.Run(R"(
      CREATE TABLE psa_sales (request_id BIGINT, record BIGINT,
                              payload VARCHAR(40))
        USING EXTENDED STORAGE)"),
        "PSA table");
  std::vector<std::vector<Value>> staged;
  for (int64_t i = 0; i < 100000; ++i) {
    staged.push_back({Value::Int(i / 5000), Value::Int(i),
                      Value::String("src_record_" + std::to_string(i))});
  }
  hana::Stopwatch watch;
  Check(db.catalog().Insert("psa_sales", staged), "direct load");
  auto* store = db.iq()->store();
  auto psa = store->GetTable("PSA_SALES");
  Check(psa.status(), "psa lookup");
  std::printf(
      "loaded %zu PSA records in %.0f ms straight to disk: %zu row groups, "
      "%zu KB on disk (vs %zu KB raw)\n\n",
      staged.size(), watch.ElapsedMillis(), (*psa)->num_groups(),
      (*psa)->disk_bytes() / 1024, staged.size() * 40 / 1024);

  std::printf("== 2. Hybrid sales DSO with range partitions ==\n\n");
  Check(db.Run(R"(
      CREATE TABLE sales_dso (doc_id BIGINT, fiscal_month BIGINT,
                              amount DOUBLE)
        USING HYBRID EXTENDED STORAGE
        PARTITION BY RANGE (fiscal_month)
          (PARTITION VALUES < 24 COLD,
           PARTITION OTHERS HOT))"),
        "hybrid DSO");
  hana::Rng rng(5);
  std::vector<std::vector<Value>> docs;
  for (int64_t i = 0; i < 120000; ++i) {
    int64_t month = rng.Uniform(0, 35);  // 36 fiscal months; 24 are cold.
    docs.push_back({Value::Int(i), Value::Int(month),
                    Value::Double(rng.Uniform(100, 99999) / 100.0)});
  }
  Check(db.catalog().Insert("sales_dso", docs), "hybrid load");
  auto* entry = *db.catalog().GetTable("sales_dso");
  std::printf("partition residence after insert routing:\n");
  for (size_t p = 0; p < entry->partitions.size(); ++p) {
    const auto& partition = entry->partitions[p];
    size_t rows = partition.hot != nullptr
                      ? partition.hot->live_rows()
                      : (*store->GetTable(partition.cold_table))->live_rows();
    std::printf("  partition %zu (%s): %zu rows\n", p,
                partition.hot != nullptr ? "hot, in-memory" : "cold, IQ",
                rows);
  }

  auto all = db.Execute(R"(
      SELECT COUNT(*) AS docs, SUM(amount) AS total FROM sales_dso)");
  Check(all.status(), "span query");
  std::printf("\nquery spanning hot+cold (Union Plan): %s",
              all->table.ToString().c_str());
  auto hot_only = db.Execute(R"(
      SELECT COUNT(*) AS recent_docs FROM sales_dso
      WHERE fiscal_month >= 30)");
  Check(hot_only.status(), "pruned query");
  std::printf("recent-months query: %.1f ms (cold partition pruned)\n",
              hot_only->metrics.total_ms);
  auto plan = db.Explain(
      "SELECT COUNT(*) AS n FROM sales_dso WHERE fiscal_month >= 30");
  Check(plan.status(), "explain");
  std::printf("\npruned plan:\n%s\n", plan->c_str());

  std::printf("== 3. Aging: moving closed months to cold storage ==\n\n");
  // Month 24..29 close: re-partition by moving them under the cold bound
  // is modeled by the built-in aging run after the application updates
  // the partition ranges; here rows whose range now maps cold move out.
  auto moved = db.catalog().RunAging("sales_dso");
  Check(moved.status(), "aging");
  std::printf("aging run moved %zu rows (range re-evaluation)\n", *moved);

  std::printf("\n== 4. Distributed commit across memory and IQ ==\n\n");
  // A BW load request writes the hot DSO partition and the PSA archive
  // atomically: HANA coordinates the two-phase commit (Section 3.1).
  auto& coordinator = db.coordinator();
  auto* hot_partition = entry->partitions.back().hot.get();
  hana::txn::ColumnTableParticipant memory("hana-imdb", hot_partition);
  hana::txn::ExtendedTableParticipant archive("hana-iq", *psa);

  hana::txn::TxnId txn = coordinator.Begin();
  Check(coordinator.Enlist(txn, &memory), "enlist memory");
  Check(coordinator.Enlist(txn, &archive), "enlist extended");
  for (int64_t i = 0; i < 1000; ++i) {
    Check(memory.StageInsert(txn, {Value::Int(900000 + i), Value::Int(30),
                                   Value::Double(42.0)}),
          "stage hot");
    Check(archive.StageInsert(txn, {Value::Int(999), Value::Int(900000 + i),
                                    Value::String("load_request_999")}),
          "stage psa");
  }
  size_t hot_before = hot_partition->live_rows();
  size_t psa_before = (*psa)->live_rows();
  Check(coordinator.Commit(txn), "2PC commit");
  std::printf("2PC commit: hot %zu -> %zu rows, PSA %zu -> %zu rows\n",
              hot_before, hot_partition->live_rows(), psa_before,
              (*psa)->live_rows());

  // Failure: the extended store becomes unreachable mid-transaction; the
  // whole transaction aborts ("the entire transaction will be aborted").
  txn = coordinator.Begin();
  Check(coordinator.Enlist(txn, &memory), "enlist memory");
  Check(coordinator.Enlist(txn, &archive), "enlist extended");
  Check(memory.StageInsert(
            txn, {Value::Int(999999), Value::Int(30), Value::Double(1.0)}),
        "stage");
  Check(archive.StageInsert(txn, {Value::Int(1000), Value::Int(999999),
                                  Value::String("x")}),
        "stage");
  archive.FailNextPrepare();
  Status failed = coordinator.Commit(txn);
  std::printf(
      "2PC with failing extended store: %s (rows unchanged: hot=%zu)\n",
      failed.ToString().c_str(), hot_partition->live_rows());

  // Crash after prepare: the transaction is in doubt until joint
  // recovery resolves it (presumed abort).
  txn = coordinator.Begin();
  Check(coordinator.Enlist(txn, &memory), "enlist");
  Check(coordinator.Enlist(txn, &archive), "enlist");
  Check(memory.StageInsert(
            txn, {Value::Int(999998), Value::Int(30), Value::Double(1.0)}),
        "stage");
  Check(archive.StageInsert(txn, {Value::Int(1001), Value::Int(999998),
                                  Value::String("y")}),
        "stage");
  coordinator.SetFailpoint(hana::txn::Failpoint::kAfterPrepare);
  Status crashed = coordinator.Commit(txn);
  std::printf("coordinator crash after prepare: %s\n",
              crashed.ToString().c_str());
  auto in_doubt = coordinator.InDoubt();
  std::printf("in-doubt transactions: %zu\n", in_doubt.size());
  coordinator.RegisterRecoveryParticipant(&memory);
  coordinator.RegisterRecoveryParticipant(&archive);
  Check(coordinator.Recover(), "joint recovery");
  std::printf("after joint recovery: %zu in doubt, hot rows=%zu "
              "(presumed abort)\n",
              coordinator.InDoubt().size(), hot_partition->live_rows());
  std::printf("\nBW cold-data scenario complete.\n");
  return 0;
}
