// The automotive warranty-claim project of Section 4.1: diagnosis
// read-outs, support escalations and warranty claims live as raw data
// in HDFS; condensed production/sales data lives in SAP HANA. Hive
// extracts twelve months of read-outs for one car series, the PAL
// apriori algorithm mines association rules (confidence 0.8-1.0), and
// the resulting model classifies new read-outs as warranty candidates
// in real time. A custom map-reduce job is exposed as a virtual table
// function (Section 4.3).

#include <cstdio>

#include "common/strings.h"
#include "common/util.h"
#include "hadoop/serde.h"
#include "pal/apriori.h"
#include "platform/platform.h"

using hana::Status;
using hana::Value;

namespace {

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  hana::platform::Platform db;

  // HANA side: condensed information on production and sales.
  Check(db.Run(R"(
      CREATE COLUMN TABLE vehicles (vin BIGINT, series VARCHAR(10),
                                    production_month BIGINT);
  )"),
        "HANA schema");
  hana::Rng rng(77);
  std::vector<std::vector<Value>> vehicles;
  const char* kSeries[] = {"S100", "S200", "S300"};
  for (int64_t vin = 0; vin < 5000; ++vin) {
    vehicles.push_back({Value::Int(vin), Value::String(kSeries[vin % 3]),
                        Value::Int(rng.Uniform(0, 23))});
  }
  Check(db.catalog().Insert("vehicles", vehicles), "vehicles");

  // Hadoop side: raw diagnosis read-outs (one row per workshop visit).
  auto readout_schema = std::make_shared<hana::Schema>(
      std::vector<hana::ColumnDef>{
          {"vin", hana::DataType::kInt64, false},
          {"month", hana::DataType::kInt64, false},
          {"codes", hana::DataType::kString, false},   // comma-separated
          {"claimed", hana::DataType::kInt64, false}});
  Check(db.hive()->CreateTable("readouts", readout_schema), "hive table");
  std::vector<std::vector<Value>> readouts;
  for (int64_t i = 0; i < 30000; ++i) {
    int64_t vin = rng.Uniform(0, 4999);
    std::string codes;
    bool failing = rng.Uniform(0, 9) < 3;
    if (failing) {
      codes = "E1" + std::to_string(rng.Uniform(0, 2)) + ",TEMP_HIGH";
    }
    int64_t noise = rng.Uniform(1, 4);
    for (int64_t j = 0; j < noise; ++j) {
      if (!codes.empty()) codes += ",";
      codes += "D" + std::to_string(rng.Uniform(0, 40));
    }
    int64_t claimed = failing && rng.Uniform(0, 9) < 9 ? 1 : 0;
    readouts.push_back({Value::Int(vin), Value::Int(rng.Uniform(0, 23)),
                        Value::String(codes), Value::Int(claimed)});
  }
  Check(db.hive()->LoadRows("readouts", readouts), "hive load");

  Check(db.Run(R"(
      CREATE REMOTE SOURCE MRSERVER ADAPTER hadoop CONFIGURATION
        'webhdfs=http://mrserver1:50070;webhcatalog=http://mrserver1:50111'
        WITH CREDENTIAL TYPE 'password' USING 'user=hadoop;password=pw';
      CREATE VIRTUAL TABLE readouts AT "MRSERVER"."default"."readouts";
  )"),
        "SDA registration");

  // Extract twelve months for one car series: a federated query joining
  // the remote read-outs with the local vehicle master data.
  auto extracted = db.Execute(R"(
      SELECT r.codes, r.claimed
      FROM readouts r JOIN vehicles v ON r.vin = v.vin
      WHERE v.series = 'S200' AND r.month >= 12 AND r.month < 24)");
  Check(extracted.status(), "federated extraction");
  std::printf(
      "extracted %zu read-outs for series S200 (%zu map-reduce jobs, "
      "%.0f ms simulated remote time)\n",
      extracted->table.num_rows(), extracted->metrics.mapreduce_jobs,
      extracted->metrics.simulated_remote_ms);

  // Mine association rules with the predictive analysis library.
  std::vector<hana::pal::Transaction> transactions;
  for (const auto& row : extracted->table.rows()) {
    hana::pal::Transaction txn;
    for (const std::string& code : hana::Split(row[0].string_value(), ',')) {
      if (!code.empty()) txn.push_back(code);
    }
    if (row[1].int_value() == 1) txn.push_back("CLAIM");
    transactions.push_back(std::move(txn));
  }
  hana::pal::AprioriOptions options;
  options.min_support = 0.02;
  options.min_confidence = 0.8;
  auto rules = hana::pal::Apriori(transactions, options);
  Check(rules.status(), "apriori");
  size_t claim_rules = 0;
  for (const auto& rule : *rules) {
    if (rule.rhs == "CLAIM") ++claim_rules;
  }
  std::printf("apriori: %zu rules (%zu predicting CLAIM), confidence "
              ">= %.2f\n",
              rules->size(), claim_rules, options.min_confidence);
  for (size_t i = 0; i < std::min<size_t>(5, rules->size()); ++i) {
    std::printf("  %s\n", (*rules)[i].ToString().c_str());
  }

  // Classify fresh read-outs in real time inside HANA.
  hana::pal::RuleClassifier classifier(*rules);
  size_t flagged = 0;
  const size_t kProbes = 2000;
  for (size_t i = 0; i < kProbes; ++i) {
    hana::pal::Transaction probe;
    if (rng.Uniform(0, 9) < 2) {
      probe = {"E1" + std::to_string(rng.Uniform(0, 2)), "TEMP_HIGH"};
    } else {
      probe = {"D" + std::to_string(rng.Uniform(0, 40))};
    }
    if (classifier.Score(probe, "CLAIM") >= 0.8) ++flagged;
  }
  std::printf("classified %zu new read-outs: %zu flagged as warranty "
              "candidates\n\n",
              kProbes, flagged);

  // Direct HDFS access: a custom map-reduce job exposed as a virtual
  // table function (the PLANT100_SENSOR_RECORDS workflow of Section 4.3).
  Check(db.RegisterMapReduceJob(
            "com.customer.hadoop.SensorMRDriver",
            [](hana::hadoop::HiveEngine* hive)
                -> hana::Result<hana::storage::Table> {
              // Count claims per failure code straight from the HDFS file.
              auto schema = std::make_shared<hana::Schema>(
                  std::vector<hana::ColumnDef>{
                      {"code", hana::DataType::kString, false},
                      {"claims", hana::DataType::kInt64, false}});
              HANA_ASSIGN_OR_RETURN(const hana::hadoop::HiveTable* table,
                                    hive->GetTable("readouts"));
              hana::hadoop::JobSpec job;
              job.name = "claims-per-code";
              job.inputs = {table->path};
              job.output = "/tmp/claims_per_code";
              auto row_schema = table->schema;
              job.mapper = [row_schema](int, const std::string& line,
                                        std::vector<hana::hadoop::KeyValue>*
                                            out) {
                auto row = hana::hadoop::ParseRow(line, *row_schema);
                if (!row.ok() || (*row)[3].int_value() != 1) return;
                for (const std::string& code :
                     hana::Split((*row)[2].string_value(), ',')) {
                  if (!code.empty()) out->emplace_back(code, "1");
                }
              };
              job.reducer = [](const std::string& key,
                               const std::vector<std::string>& values,
                               std::vector<std::string>* out) {
                out->push_back(key + "\t" + std::to_string(values.size()));
              };
              HANA_RETURN_IF_ERROR(
                  hive->mapreduce()->RunJob(job).status());
              HANA_ASSIGN_OR_RETURN(std::vector<std::string> lines,
                                    hive->hdfs()->ReadFile(job.output));
              hana::storage::Table result(schema);
              for (const std::string& line : lines) {
                HANA_ASSIGN_OR_RETURN(std::vector<Value> row,
                                      hana::hadoop::ParseRow(line, *schema));
                result.AppendRow(std::move(row));
              }
              return result;
            }),
        "register map-reduce job");
  Check(db.Run(R"(
      CREATE VIRTUAL FUNCTION CLAIMS_PER_CODE()
        RETURNS TABLE (code VARCHAR(20), claims BIGINT)
        CONFIGURATION 'hana.mapred.driver.class =
          com.customer.hadoop.SensorMRDriver;
          hana.mapred.jobFiles = job.jar, library.jar;
          mapred.reducer.count = 1'
        AT MRSERVER)"),
        "virtual function");
  auto top_codes = db.Query(R"(
      SELECT code, claims FROM CLAIMS_PER_CODE()
      WHERE claims > 100 ORDER BY claims DESC LIMIT 5)");
  Check(top_codes.status(), "virtual function query");
  std::printf("top failure codes via the map-reduce table function:\n%s\n",
              top_codes->ToString().c_str());
  std::printf("warranty analytics scenario complete.\n");
  return 0;
}
