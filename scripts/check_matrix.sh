#!/usr/bin/env bash
# The CI build/test matrix: every enforcement layer in its strongest
# configuration, failing on the first red leg. Legs:
#
#   release-lint  Release build with HANA_LINT=ON (-Werror=unused-result
#                 and, under Clang, -Werror=thread-safety) plus the full
#                 test suite including the lint-labeled script/fixture/
#                 negative-compile tests. Proves the annotations and
#                 lint rules hold where the optimizer is on and the
#                 runtime validator is compiled out.
#   tsan          -fsanitize=thread over the concurrency-labeled tests
#                 (task pool, parallel executor, online merge, parallel
#                 joins, txn stress, MVCC snapshot isolation, HTAP
#                 mixed workload). The runtime lock-order validator
#                 is also on in this leg (RelWithDebInfo default).
#   asan-ubsan    -fsanitize=address,undefined over the full suite.
#   validator     Default (RelWithDebInfo) GCC build with the runtime
#                 lock-order validator compiled in and HANA_LOCK_ORDER=
#                 fatal for every test: any rank inversion anywhere in
#                 the suite aborts the offending test.
#   kernels       The kernels-labeled bit-identity tests (codec fuzzing,
#                 scalar-vs-dispatched query matrix) run twice: once
#                 with HANA_CPU=scalar (reference table pinned) and once
#                 with HANA_CPU=native (best verified ISA level). Proves
#                 the dispatch layer is bit-identical end to end under
#                 both process-level bindings, lock-order fatal.
#
# Each leg builds into its own build-matrix-<leg> directory so cached
# configurations never leak options across legs. Pass leg names to run
# a subset: scripts/check_matrix.sh tsan validator
set -uo pipefail

cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

run_leg() {
  local name="$1"
  shift
  local dir="build-matrix-${name}"
  echo "=== matrix leg: ${name} ==="
  local cmake_args=()
  while [ "$#" -gt 0 ] && [ "$1" != "--" ]; do
    cmake_args+=("$1")
    shift
  done
  shift  # --
  cmake -B "${dir}" "${cmake_args[@]}" || return 1
  cmake --build "${dir}" -j "${JOBS}" || return 1
  (cd "${dir}" && "$@") || return 1
  echo "=== matrix leg: ${name} OK ==="
}

leg_release_lint() {
  run_leg release-lint \
    -DCMAKE_BUILD_TYPE=Release -DHANA_LINT=ON \
    -- ctest --output-on-failure
}

leg_tsan() {
  run_leg tsan \
    -DHANA_SANITIZE=thread \
    -- ctest -L concurrency --output-on-failure
}

leg_asan_ubsan() {
  run_leg asan-ubsan \
    -DHANA_SANITIZE=address,undefined \
    -- ctest --output-on-failure
}

leg_validator() {
  HANA_LOCK_ORDER=fatal run_leg validator \
    -DHANA_LOCK_ORDER_CHECKS=ON \
    -- ctest --output-on-failure
}

leg_kernels() {
  HANA_CPU=scalar HANA_LOCK_ORDER=fatal run_leg kernels \
    -DHANA_LOCK_ORDER_CHECKS=ON \
    -- ctest -L kernels --output-on-failure || return 1
  echo "=== matrix leg: kernels (HANA_CPU=native) ==="
  (cd build-matrix-kernels &&
    HANA_CPU=native HANA_LOCK_ORDER=fatal \
      ctest -L kernels --output-on-failure) || return 1
  echo "=== matrix leg: kernels (HANA_CPU=native) OK ==="
}

legs=("$@")
if [ "${#legs[@]}" -eq 0 ]; then
  legs=(release-lint tsan asan-ubsan validator kernels)
fi

for leg in "${legs[@]}"; do
  case "${leg}" in
    release-lint) leg_release_lint ;;
    tsan) leg_tsan ;;
    asan-ubsan) leg_asan_ubsan ;;
    validator) leg_validator ;;
    kernels) leg_kernels ;;
    *)
      echo "unknown matrix leg: ${leg}" >&2
      exit 2
      ;;
  esac || {
    echo "check_matrix: leg '${leg}' FAILED" >&2
    exit 1
  }
done
echo "check_matrix: all legs green"
