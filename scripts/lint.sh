#!/usr/bin/env bash
# Project-invariant lint pass. Enforces the conventions the compiler
# cannot (or that only Clang can), so they hold on every toolchain:
#
#   1. No naked std::mutex / std::lock_guard / std::unique_lock /
#      std::scoped_lock / std::condition_variable outside
#      src/common/sync.h. All locking goes through the annotated
#      Mutex/MutexLock/CondVar wrappers so Clang -Wthread-safety can
#      see every acquisition.
#   2. No `throw` across API boundaries: src/ code reports failure via
#      Status/Result. (std::rethrow_exception for ParallelFor's
#      caller-side propagation does not trip the check.)
#   3. Every const_cast / reinterpret_cast must carry a justification:
#      a `lint: <cast> allowed` comment on the same or preceding line.
#   4. No hand-rolled Volcano pull loops outside src/exec: calling
#      PhysicalOp::Next() or DrainToTable directly bypasses the pipeline
#      executor (and its stats, scheduling and determinism guarantees).
#      Other layers run plans through exec::ExecutePlan[WithStats].
#
# When clang-tidy is on PATH and a compile database exists, it also
# runs the .clang-tidy profile over the checked sources. Missing tools
# skip with a message instead of failing, so GCC-only environments
# still pass.
#
# Run from the repo root (the lint CMake target and the lint-labeled
# ctest both do): scripts/lint.sh
set -u

cd "$(dirname "$0")/.."

fail=0

# Strips // comments (preserving line count), then prints file:line:text
# for lines matching the pattern, excluding files matching $3 (optional
# grep -E pattern on the path).
find_violations() {
  local pattern="$1" exclude="${2:-^$}"
  local f
  while IFS= read -r f; do
    echo "$f" | grep -Eq "$exclude" && continue
    sed 's%//.*%%' "$f" | grep -nE "$pattern" | sed "s%^%$f:%"
  done < <(find src -name '*.h' -o -name '*.cc' | sort)
}

check() {
  local title="$1" out="$2"
  if [ -n "$out" ]; then
    echo "LINT FAIL: $title"
    echo "$out" | sed 's/^/  /'
    echo
    fail=1
  fi
}

check "naked standard-library locking outside src/common/sync.h \
(use hana::Mutex / MutexLock / CondVar from common/sync.h)" \
  "$(find_violations \
     'std::(mutex|timed_mutex|recursive_mutex|shared_mutex|lock_guard|unique_lock|scoped_lock|shared_lock|condition_variable)' \
     '^src/common/sync\.h$')"

check "throw across an API boundary (report errors via Status/Result)" \
  "$(find_violations '(^|[^_[:alnum:]])throw([^_[:alnum:]]|$)')"

check "direct operator pull loop outside src/exec \
(run plans through exec::ExecutePlan[WithStats], not ->Next()/DrainToTable)" \
  "$(find_violations '\->Next\(\)|DrainToTable' '^src/exec/')"

# const_cast / reinterpret_cast need a `lint: <cast> allowed`
# justification on the same line or within the three preceding lines.
cast_violations=""
while IFS= read -r hit; do
  f="${hit%%:*}" rest="${hit#*:}" line="${rest%%:*}"
  start=$((line - 3)); [ "$start" -lt 1 ] && start=1
  if ! sed -n "${start},${line}p" "$f" | grep -q 'lint:.*allowed'; then
    cast_violations="${cast_violations}${hit}"$'\n'
  fi
done < <(find_violations '(const_cast|reinterpret_cast)[[:space:]]*<')
check "unjustified const_cast/reinterpret_cast \
(annotate with '// lint: <cast> allowed — why')" "$cast_violations"

# clang-tidy profile (.clang-tidy) when the tool and a compile database
# are available.
if command -v clang-tidy > /dev/null 2>&1; then
  db=""
  for d in build build-lint; do
    [ -f "$d/compile_commands.json" ] && db="$d" && break
  done
  if [ -n "$db" ]; then
    echo "Running clang-tidy (compile database: $db) ..."
    if ! find src -name '*.cc' | sort \
        | xargs clang-tidy -p "$db" --quiet --warnings-as-errors='*'; then
      echo "LINT FAIL: clang-tidy reported findings"
      fail=1
    fi
  else
    echo "SKIP clang-tidy: no compile_commands.json" \
         "(configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON)"
  fi
else
  echo "SKIP clang-tidy: not installed"
fi

if [ "$fail" -ne 0 ]; then
  echo "lint: FAILED"
  exit 1
fi
echo "lint: OK"
