#!/usr/bin/env bash
# Project-invariant lint pass. Enforces the conventions the compiler
# cannot (or that only Clang can), so they hold on every toolchain:
#
#   1. No naked std::mutex / std::lock_guard / std::unique_lock /
#      std::scoped_lock / std::condition_variable outside
#      src/common/sync.{h,cc}. All locking goes through the annotated
#      Mutex/MutexLock/CondVar wrappers so Clang -Wthread-safety and the
#      runtime lock-order validator see every acquisition. (sync.cc is
#      the validator itself: instrumenting the instrument would recurse.)
#   2. No `throw` across API boundaries: src/ code reports failure via
#      Status/Result. (std::rethrow_exception for ParallelFor's
#      caller-side propagation does not trip the check.)
#   3. Every const_cast / reinterpret_cast must carry a justification:
#      a `lint: <cast> allowed` comment on the same or preceding line.
#   4. No hand-rolled Volcano pull loops outside src/exec: calling
#      PhysicalOp::Next() or DrainToTable directly bypasses the pipeline
#      executor (and its stats, scheduling and determinism guarantees).
#      Other layers run plans through exec::ExecutePlan[WithStats].
#   5. A file that declares a hana::Mutex member must GUARDED_BY-annotate
#      at least one field with it — a mutex protecting nothing nameable
#      is either dead or hiding an unannotated invariant.
#   6. Every std::atomic declaration carries an `atomic:` comment
#      justifying its memory ordering (same line or the lines above).
#   7. Every IgnoreStatus() call site carries a `lint: IgnoreStatus
#      allowed` justification; unjustified drops must propagate instead.
#   8. No raw SIMD intrinsics (_mm_/_mm256_/_mm512_ calls, vector
#      register types) outside src/common/cpu_dispatch.{h,cc}. Kernels
#      live behind the runtime dispatch table so every call site keeps
#      the scalar-identical guarantee and the HANA_CPU override works;
#      a stray intrinsic elsewhere silently forks the ISA story.
#   9. No default-constructed hana::Mutex members: every Mutex must be
#      brace-initialized with a name and a lock rank (`Mutex mu_{"who",
#      lock_rank::kX};`) so the runtime lock-order validator can report
#      and rank-check it. An unnamed mutex shows up in deadlock reports
#      as an anonymous address and is exempt from rank checking.
#
# When clang-tidy is on PATH and a compile database exists, it also
# runs the .clang-tidy profile over the checked sources. Missing tools
# skip with a message instead of failing, so GCC-only environments
# still pass.
#
# HANA_LINT_SRC overrides the scanned tree (default: src). The lint
# rule tests point it at fixture directories to prove each rule still
# fires/stays quiet; overriding skips the clang-tidy pass.
#
# Run from the repo root (the lint CMake target and the lint-labeled
# ctest both do): scripts/lint.sh
set -u

cd "$(dirname "$0")/.."

SRC_DIR="${HANA_LINT_SRC:-src}"
fail=0

# Prints $1 with /* ... */ block comments and // line comments removed,
# preserving the line count so reported line numbers stay correct.
strip_comments() {
  perl -0777 -pe \
    's{/\*.*?\*/}{(my $c = $&) =~ s/[^\n]//g; $c}ges; s{//[^\n]*}{}g' "$1"
}

# Prints file:line:text for comment-stripped lines matching the pattern,
# excluding files matching $2 (optional grep -E pattern on the path).
find_violations() {
  local pattern="$1" exclude="${2:-^$}"
  local f
  while IFS= read -r f; do
    echo "$f" | grep -Eq "$exclude" && continue
    strip_comments "$f" | grep -nE "$pattern" | sed "s%^%$f:%"
  done < <(find "$SRC_DIR" \( -name '*.h' -o -name '*.cc' \) | sort)
}

# Filters find_violations output, keeping only hits without a
# justification comment matching $1 on the hit line or the three lines
# above it (checked against the raw file: justifications are comments).
without_justification() {
  local justification="$1" hit f rest line start
  while IFS= read -r hit; do
    [ -z "$hit" ] && continue
    f="${hit%%:*}" rest="${hit#*:}" line="${rest%%:*}"
    start=$((line - 3)); [ "$start" -lt 1 ] && start=1
    if ! sed -n "${start},${line}p" "$f" | grep -q "$justification"; then
      printf '%s\n' "$hit"
    fi
  done
}

check() {
  local title="$1" out="$2"
  if [ -n "$out" ]; then
    echo "LINT FAIL: $title"
    echo "$out" | sed 's/^/  /'
    echo
    fail=1
  fi
}

check "naked standard-library locking outside src/common/sync.{h,cc} \
(use hana::Mutex / MutexLock / CondVar from common/sync.h)" \
  "$(find_violations \
     'std::(mutex|timed_mutex|recursive_mutex|shared_mutex|lock_guard|unique_lock|scoped_lock|shared_lock|condition_variable)' \
     '^src/common/sync\.(h|cc)$')"

check "throw across an API boundary (report errors via Status/Result)" \
  "$(find_violations '(^|[^_[:alnum:]])throw([^_[:alnum:]]|$)')"

check "direct operator pull loop outside src/exec \
(run plans through exec::ExecutePlan[WithStats], not ->Next()/DrainToTable)" \
  "$(find_violations '\->Next\(\)|DrainToTable' '^src/exec/')"

check "unjustified const_cast/reinterpret_cast \
(annotate with '// lint: <cast> allowed — why')" \
  "$(find_violations '(const_cast|reinterpret_cast)[[:space:]]*<' \
     | without_justification 'lint:.*allowed')"

# Rule 5: a Mutex member declaration without a single GUARDED_BY in the
# same file. The declaration pattern requires whitespace after "Mutex",
# so MutexLock instantiations and Mutex& parameters don't match.
mutex_guard_violations=""
while IFS= read -r f; do
  echo "$f" | grep -Eq '^src/common/sync\.(h|cc)$' && continue
  if strip_comments "$f" \
      | grep -qE '(^|[[:space:](])(mutable[[:space:]]+)?Mutex[[:space:]]+[A-Za-z_]' \
      && ! grep -q 'GUARDED_BY' "$f"; then
    mutex_guard_violations="${mutex_guard_violations}${f}"$'\n'
  fi
done < <(find "$SRC_DIR" \( -name '*.h' -o -name '*.cc' \) | sort)
check "hana::Mutex member without any GUARDED_BY field in the file \
(annotate what the mutex protects)" "$mutex_guard_violations"

# Rule 9: a Mutex member declared without a brace initializer (name +
# rank). The pattern requires whitespace after "Mutex" and a direct
# trailing ';', so references, parameters and initialized members don't
# match.
check "default-constructed hana::Mutex member \
(brace-initialize with a name and lock rank: Mutex mu_{\"who\", lock_rank::kX})" \
  "$(find_violations \
     '(^|[[:space:](])(mutable[[:space:]]+)?Mutex[[:space:]]+[A-Za-z_][A-Za-z0-9_]*[[:space:]]*;' \
     '^src/common/sync\.(h|cc)$')"

check "std::atomic without an ordering justification \
(comment '// atomic: <ordering rationale>' on or above the declaration)" \
  "$(find_violations 'std::atomic[[:space:]]*<' \
     | without_justification 'atomic:')"

check "raw SIMD intrinsics outside src/common/cpu_dispatch.{h,cc} \
(add kernels to the dispatch table; call sites use Kernels())" \
  "$(find_violations '(^|[^_[:alnum:]])(_mm(256|512)?_[a-z0-9_]+[[:space:]]*\(|__m(64|128|256|512)[id]?([^_[:alnum:]]|$)|_mm_malloc)' \
     '^src/common/cpu_dispatch\.(h|cc)$')"

check "IgnoreStatus without justification \
(annotate with '// lint: IgnoreStatus allowed — why', or propagate)" \
  "$(find_violations 'IgnoreStatus[[:space:]]*\(' \
     '^src/common/status\.h$' \
     | without_justification 'lint: IgnoreStatus allowed')"

# clang-tidy profile (.clang-tidy) when the tool and a compile database
# are available. Skipped when scanning a fixture tree.
if [ -n "${HANA_LINT_SRC:-}" ]; then
  echo "SKIP clang-tidy: HANA_LINT_SRC override active"
elif command -v clang-tidy > /dev/null 2>&1; then
  db=""
  for d in build build-lint; do
    [ -f "$d/compile_commands.json" ] && db="$d" && break
  done
  if [ -n "$db" ]; then
    echo "Running clang-tidy (compile database: $db) ..."
    if ! find src -name '*.cc' | sort \
        | xargs clang-tidy -p "$db" --quiet --warnings-as-errors='*'; then
      echo "LINT FAIL: clang-tidy reported findings"
      fail=1
    fi
  else
    echo "SKIP clang-tidy: no compile_commands.json" \
         "(configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON)"
  fi
else
  echo "SKIP clang-tidy: not installed"
fi

if [ "$fail" -ne 0 ]; then
  echo "lint: FAILED"
  exit 1
fi
echo "lint: OK"
